// sj_inspect — offline flight-dump inspector.
//
// A flight dump (*.flightdump.json, DESIGN.md §10) is written by the
// in-process flight recorder, possibly from a signal handler over a
// half-dead heap. This tool is the other half of that contract: it runs
// in a healthy process, after the fact, and turns the dump back into a
// readable incident report.
//
//   sj_inspect <dump.json>              render the incident summary
//   sj_inspect --timeline <dump.json>   also render the per-thread span log
//   sj_inspect --validate <dump...>     schema-check only; exit 1 on failure
//   sj_inspect --selftest               run built-in checks (used by ctest)
//
// Deliberately dependency-free (not even the library): a dump must be
// inspectable on a machine where the library itself is the thing that
// crashed.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON document model + recursive-descent parser.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  // Insertion order preserved; dumps never repeat keys.
  std::vector<std::pair<std::string, Json>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const Json* Get(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number) : fallback;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  // Parses one complete document; on failure `error()` locates the
  // first offending byte.
  bool Parse(Json* out) {
    SkipWs();
    if (!Value(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing content");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Value(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end");
    switch (text_[pos_]) {
      case '{':
        return Object(out, depth);
      case '[':
        return Array(out, depth);
      case '"':
        out->type = Json::Type::kString;
        return String(&out->string);
      case 't':
        out->type = Json::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = Json::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = Json::Type::kNull;
        return Literal("null");
      default:
        out->type = Json::Type::kNumber;
        return Number(&out->number);
    }
  }

  bool Object(Json* out, int depth) {
    out->type = Json::Type::kObject;
    if (!Eat('{')) return Fail("expected '{'");
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!String(&key)) return Fail("expected object key");
      SkipWs();
      if (!Eat(':')) return Fail("expected ':'");
      SkipWs();
      Json value;
      if (!Value(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return Fail("expected ',' or '}'");
    }
  }

  bool Array(Json* out, int depth) {
    out->type = Json::Type::kArray;
    if (!Eat('[')) return Fail("expected '['");
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      Json value;
      if (!Value(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  bool String(std::string* out) {
    if (!Eat('"')) return Fail("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            char h = text_[pos_++];
            unsigned digit = h <= '9'   ? static_cast<unsigned>(h - '0')
                             : h <= 'F' ? static_cast<unsigned>(h - 'A' + 10)
                                        : static_cast<unsigned>(h - 'a' + 10);
            code = code * 16 + digit;
          }
          // The recorder only emits \u00XX for control bytes; render
          // anything wider as '?' rather than pulling in UTF-8 encoding.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool Number(double* out) {
    size_t start = pos_;
    Eat('-');
    if (!DigitRun()) return Fail("expected digit");
    if (Eat('.') && !DigitRun()) return Fail("expected fraction digits");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!DigitRun()) return Fail("expected exponent digits");
    }
    *out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
    return true;
  }

  bool DigitRun() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema validation.
//
// The checks mirror the writer in src/obs/flight_recorder.cc; a dump that
// passes here is safe for downstream scripting to index without existence
// checks. Sections sourced from pre-serialized buffers (process, metrics
// snapshot) may be null — a signal can land before the first refresh.
// ---------------------------------------------------------------------------

class SchemaErrors {
 public:
  void Add(const std::string& path, const std::string& msg) {
    errors_.push_back(path + ": " + msg);
  }
  bool ok() const { return errors_.empty(); }
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::vector<std::string> errors_;
};

void RequireInt(const Json& parent, const std::string& path, const char* key,
                SchemaErrors* errors) {
  const Json* v = parent.Get(key);
  if (v == nullptr || !v->is_number()) {
    errors->Add(path + "." + key, "missing or not a number");
  }
}

void RequireString(const Json& parent, const std::string& path,
                   const char* key, SchemaErrors* errors) {
  const Json* v = parent.Get(key);
  if (v == nullptr || !v->is_string()) {
    errors->Add(path + "." + key, "missing or not a string");
  }
}

void RequireBool(const Json& parent, const std::string& path, const char* key,
                 SchemaErrors* errors) {
  const Json* v = parent.Get(key);
  if (v == nullptr || !v->is_bool()) {
    errors->Add(path + "." + key, "missing or not a bool");
  }
}

void ValidateEvents(const Json& events, SchemaErrors* errors) {
  RequireInt(events, "events", "capacity", errors);
  RequireInt(events, "events", "total", errors);
  RequireInt(events, "events", "dropped", errors);
  const Json* records = events.Get("records");
  if (records == nullptr || !records->is_array()) {
    errors->Add("events.records", "missing or not an array");
    return;
  }
  for (size_t i = 0; i < records->array.size(); ++i) {
    const Json& rec = records->array[i];
    std::string path = "events.records[" + std::to_string(i) + "]";
    if (!rec.is_object()) {
      errors->Add(path, "not an object");
      continue;
    }
    RequireInt(rec, path, "seq", errors);
    RequireInt(rec, path, "ts_ns", errors);
    RequireInt(rec, path, "tid", errors);
    RequireString(rec, path, "type", errors);
    RequireString(rec, path, "severity", errors);
    RequireString(rec, path, "message", errors);
  }
}

void ValidateActivities(const Json& activities, SchemaErrors* errors) {
  for (size_t i = 0; i < activities.array.size(); ++i) {
    const Json& act = activities.array[i];
    std::string path = "activities[" + std::to_string(i) + "]";
    if (!act.is_object()) {
      errors->Add(path, "not an object");
      continue;
    }
    RequireInt(act, path, "slot", errors);
    RequireString(act, path, "kind", errors);
    RequireString(act, path, "label", errors);
    RequireString(act, path, "detail", errors);
    RequireInt(act, path, "tid", errors);
    RequireBool(act, path, "idle", errors);
    RequireInt(act, path, "start_ns", errors);
    RequireInt(act, path, "age_ns", errors);
    RequireInt(act, path, "last_beat_ns", errors);
    RequireInt(act, path, "deadline_ns", errors);
  }
}

void ValidateSpans(const Json& spans, SchemaErrors* errors) {
  RequireBool(spans, "spans", "repaired", errors);
  const Json* threads = spans.Get("threads");
  if (threads == nullptr || !threads->is_array()) {
    errors->Add("spans.threads", "missing or not an array");
    return;
  }
  for (size_t t = 0; t < threads->array.size(); ++t) {
    const Json& thread = threads->array[t];
    std::string path = "spans.threads[" + std::to_string(t) + "]";
    if (!thread.is_object()) {
      errors->Add(path, "not an object");
      continue;
    }
    RequireInt(thread, path, "tid", errors);
    RequireString(thread, path, "name", errors);
    RequireInt(thread, path, "total", errors);
    RequireInt(thread, path, "dropped", errors);
    const Json* events = thread.Get("events");
    if (events == nullptr || !events->is_array()) {
      errors->Add(path + ".events", "missing or not an array");
      continue;
    }
    for (size_t i = 0; i < events->array.size(); ++i) {
      const Json& ev = events->array[i];
      std::string ev_path = path + ".events[" + std::to_string(i) + "]";
      if (!ev.is_object()) {
        errors->Add(ev_path, "not an object");
        continue;
      }
      RequireString(ev, ev_path, "ph", errors);
      RequireString(ev, ev_path, "name", errors);
      RequireInt(ev, ev_path, "ts_ns", errors);
      const Json* ph = ev.Get("ph");
      if (ph != nullptr && ph->is_string() && ph->string != "B" &&
          ph->string != "E" && ph->string != "C") {
        errors->Add(ev_path + ".ph", "not one of B/E/C");
      }
    }
  }
}

// One retained QueryRecord in the service section's rings (the schema
// server/telemetry.cc emits).
void ValidateQueryRecord(const Json& rec, const std::string& path,
                         SchemaErrors* errors) {
  if (!rec.is_object()) {
    errors->Add(path, "not an object");
    return;
  }
  for (const char* key :
       {"request_id", "session", "dataset", "end_ts_ns", "wall_ns",
        "queue_wait_ns", "pool_tasks", "pages_read", "pages_hit",
        "pairs_examined", "theta_tests", "qual_pairs", "nodes_accessed",
        "matches"}) {
    RequireInt(rec, path.c_str(), key, errors);
  }
  for (const char* key : {"kind", "strategy", "outcome"}) {
    RequireString(rec, path.c_str(), key, errors);
  }
  const Json* residual = rec.Get("residual");
  if (residual == nullptr || !residual->is_number()) {
    errors->Add(path + ".residual", "missing or not a number");
  }
  const Json* outcome = rec.Get("outcome");
  if (outcome != nullptr && outcome->is_string() &&
      outcome->string != "ok" && outcome->string != "cancelled" &&
      outcome->string != "deadline" && outcome->string != "oversized") {
    errors->Add(path + ".outcome", "not one of ok/cancelled/deadline/oversized");
  }
}

// The `service` section: absent or null on processes that never ran a
// query server, an object with totals + slow-query rings otherwise.
void ValidateServiceSection(const Json& service, SchemaErrors* errors) {
  const Json* queries = service.Get("queries");
  if (queries == nullptr || !queries->is_object()) {
    errors->Add("service.queries", "missing or not an object");
  } else {
    RequireInt(*queries, "service.queries", "ok", errors);
    RequireInt(*queries, "service.queries", "stopped", errors);
    RequireInt(*queries, "service.queries", "oversized", errors);
  }
  const Json* latency = service.Get("latency");
  if (latency == nullptr || !latency->is_object()) {
    errors->Add("service.latency", "missing or not an object");
  } else {
    RequireInt(*latency, "service.latency", "window_ns", errors);
    RequireInt(*latency, "service.latency", "count", errors);
    RequireInt(*latency, "service.latency", "p50_ns", errors);
    RequireInt(*latency, "service.latency", "p99_ns", errors);
  }
  for (const char* ring_key : {"slow_by_latency", "slow_by_residual"}) {
    const Json* ring = service.Get(ring_key);
    if (ring == nullptr || !ring->is_array()) {
      errors->Add(std::string("service.") + ring_key,
                  "missing or not an array");
      continue;
    }
    for (size_t i = 0; i < ring->array.size(); ++i) {
      ValidateQueryRecord(ring->array[i],
                          std::string("service.") + ring_key + "[" +
                              std::to_string(i) + "]",
                          errors);
    }
  }
}

bool ValidateDump(const Json& dump, SchemaErrors* errors) {
  if (!dump.is_object()) {
    errors->Add("$", "document is not an object");
    return false;
  }
  const Json* version = dump.Get("flightdump_version");
  if (version == nullptr || !version->is_number()) {
    errors->Add("flightdump_version", "missing or not a number");
  } else if (version->AsInt() != 1) {
    errors->Add("flightdump_version",
                "unsupported version " + std::to_string(version->AsInt()));
  }
  RequireInt(dump, "$", "pid", errors);

  const Json* reason = dump.Get("reason");
  if (reason == nullptr || !reason->is_object()) {
    errors->Add("reason", "missing or not an object");
  } else {
    RequireString(*reason, "reason", "kind", errors);
    RequireString(*reason, "reason", "detail", errors);
    RequireBool(*reason, "reason", "fatal", errors);
    RequireInt(*reason, "reason", "ts_ns", errors);
  }

  const Json* process = dump.Get("process");
  if (process == nullptr || (!process->is_object() && !process->is_null())) {
    errors->Add("process", "missing or not an object/null");
  }

  const Json* events = dump.Get("events");
  if (events == nullptr || !events->is_object()) {
    errors->Add("events", "missing or not an object");
  } else {
    ValidateEvents(*events, errors);
  }

  const Json* activities = dump.Get("activities");
  if (activities == nullptr || !activities->is_array()) {
    errors->Add("activities", "missing or not an array");
  } else {
    ValidateActivities(*activities, errors);
  }

  const Json* spans = dump.Get("spans");
  if (spans == nullptr || !spans->is_object()) {
    errors->Add("spans", "missing or not an object");
  } else {
    ValidateSpans(*spans, errors);
  }

  const Json* metrics = dump.Get("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    errors->Add("metrics", "missing or not an object");
  } else {
    const Json* snapshot = metrics->Get("snapshot");
    if (snapshot == nullptr ||
        (!snapshot->is_object() && !snapshot->is_null())) {
      errors->Add("metrics.snapshot", "missing or not an object/null");
    }
    const Json* deltas = metrics->Get("deltas");
    if (deltas == nullptr || !deltas->is_array()) {
      errors->Add("metrics.deltas", "missing or not an array");
    }
  }

  // Dumps predating the service section (or from processes that never
  // served queries) carry no `service` key or a null one; both are valid.
  const Json* service = dump.Get("service");
  if (service != nullptr && !service->is_null()) {
    if (!service->is_object()) {
      errors->Add("service", "not an object/null");
    } else {
      ValidateServiceSection(*service, errors);
    }
  }

  const Json* watchdog = dump.Get("watchdog");
  if (watchdog == nullptr || !watchdog->is_object()) {
    errors->Add("watchdog", "missing or not an object");
  } else {
    RequireBool(*watchdog, "watchdog", "running", errors);
    RequireInt(*watchdog, "watchdog", "ticks", errors);
    RequireInt(*watchdog, "watchdog", "stalls", errors);
    RequireInt(*watchdog, "watchdog", "deadline_hits", errors);
  }
  return errors->ok();
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

std::string FormatNs(int64_t ns) {
  char buf[64];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

void RenderSummary(const Json& dump, std::ostream& os) {
  const Json* reason = dump.Get("reason");
  const int64_t reason_ts =
      reason != nullptr ? reason->Get("ts_ns")->AsInt() : 0;
  os << "flight dump: pid " << dump.Get("pid")->AsInt() << "\n";
  os << "reason: " << reason->Get("kind")->string;
  if (!reason->Get("detail")->string.empty()) {
    os << " — " << reason->Get("detail")->string;
  }
  os << (reason->Get("fatal")->boolean ? " [fatal]" : "") << "\n";

  const Json* watchdog = dump.Get("watchdog");
  os << "watchdog: "
     << (watchdog->Get("running")->boolean ? "running" : "stopped") << ", "
     << watchdog->Get("ticks")->AsInt() << " ticks, "
     << watchdog->Get("stalls")->AsInt() << " stalls, "
     << watchdog->Get("deadline_hits")->AsInt() << " deadline hits\n";

  const Json* activities = dump.Get("activities");
  os << "\nactivities (" << activities->array.size() << " live):\n";
  for (const Json& act : activities->array) {
    os << "  [" << act.Get("slot")->AsInt() << "] " << act.Get("kind")->string
       << "/" << act.Get("label")->string;
    if (!act.Get("detail")->string.empty()) {
      os << " (" << act.Get("detail")->string << ")";
    }
    os << " tid " << act.Get("tid")->AsInt()
       << (act.Get("idle")->boolean ? " idle" : "") << ", age "
       << FormatNs(act.Get("age_ns")->AsInt());
    int64_t last_beat = act.Get("last_beat_ns")->AsInt();
    if (last_beat > 0 && reason_ts > last_beat) {
      os << ", last beat " << FormatNs(reason_ts - last_beat) << " ago";
    }
    os << "\n";
  }

  const Json* events = dump.Get("events");
  const Json* records = events->Get("records");
  os << "\nevents (" << records->array.size() << " of "
     << events->Get("total")->AsInt() << " total, "
     << events->Get("dropped")->AsInt() << " dropped):\n";
  for (const Json& rec : records->array) {
    int64_t ts = rec.Get("ts_ns")->AsInt();
    os << "  ";
    if (reason_ts >= ts) {
      os << "-" << FormatNs(reason_ts - ts);
    } else {
      os << "+" << FormatNs(ts - reason_ts);
    }
    os << " [" << rec.Get("severity")->string << "] "
       << rec.Get("type")->string << ": " << rec.Get("message")->string
       << " (tid " << rec.Get("tid")->AsInt() << ")\n";
  }

  const Json* deltas = dump.Get("metrics")->Get("deltas");
  if (deltas != nullptr && !deltas->array.empty()) {
    os << "\nmetric deltas captured: " << deltas->array.size() << "\n";
  }

  const Json* service = dump.Get("service");
  if (service != nullptr && service->is_object()) {
    const Json* queries = service->Get("queries");
    os << "\nservice: " << queries->Get("ok")->AsInt() << " ok, "
       << queries->Get("stopped")->AsInt() << " stopped, "
       << queries->Get("oversized")->AsInt() << " oversized";
    const Json* latency = service->Get("latency");
    if (latency != nullptr && latency->is_object() &&
        latency->Get("count")->AsInt() > 0) {
      os << "; last " << FormatNs(latency->Get("window_ns")->AsInt()) << ": "
         << latency->Get("count")->AsInt() << " queries, p50 "
         << FormatNs(latency->Get("p50_ns")->AsInt()) << ", p99 "
         << FormatNs(latency->Get("p99_ns")->AsInt());
    }
    os << "\n";
    auto render_ring = [&os](const Json* ring, const char* title) {
      if (ring == nullptr || !ring->is_array() || ring->array.empty()) return;
      os << title << ":\n";
      for (const Json& rec : ring->array) {
        os << "  sess" << rec.Get("session")->AsInt() << " req"
           << rec.Get("request_id")->AsInt() << " "
           << rec.Get("kind")->string << "/" << rec.Get("strategy")->string
           << " [" << rec.Get("outcome")->string << "] "
           << FormatNs(rec.Get("wall_ns")->AsInt()) << ", "
           << rec.Get("pages_read")->AsInt() << " reads, "
           << rec.Get("pairs_examined")->AsInt() << " pairs, residual "
           << rec.Get("residual")->number << "\n";
      }
    };
    render_ring(service->Get("slow_by_latency"), "slowest queries");
    render_ring(service->Get("slow_by_residual"), "worst cost residuals");
  }
}

void RenderTimeline(const Json& dump, std::ostream& os) {
  const Json* threads = dump.Get("spans")->Get("threads");
  os << "\nspan timeline (" << threads->array.size() << " threads):\n";
  for (const Json& thread : threads->array) {
    os << "  tid " << thread.Get("tid")->AsInt();
    if (!thread.Get("name")->string.empty()) {
      os << " (" << thread.Get("name")->string << ")";
    }
    os << ": " << thread.Get("events")->array.size() << " of "
       << thread.Get("total")->AsInt() << " events, "
       << thread.Get("dropped")->AsInt() << " dropped\n";
    int depth = 0;
    for (const Json& ev : thread.Get("events")->array) {
      const std::string& ph = ev.Get("ph")->string;
      if (ph == "E" && depth > 0) --depth;
      os << "    " << ev.Get("ts_ns")->AsInt() << " ";
      for (int i = 0; i < depth; ++i) os << "| ";
      if (ph == "B") {
        os << "+ " << ev.Get("name")->string;
        const Json* cat = ev.Get("cat");
        if (cat != nullptr && cat->is_string()) {
          os << " [" << cat->string << "]";
        }
        ++depth;
      } else if (ph == "E") {
        os << "- " << ev.Get("name")->string;
      } else {
        const Json* value = ev.Get("value");
        os << "# " << ev.Get("name")->string << " = "
           << (value != nullptr ? value->AsInt() : 0);
      }
      os << "\n";
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Loads + parses + schema-checks one dump. Returns 0 on success, 1 on
// invalid content, 2 on I/O failure; diagnostics go to stderr.
int LoadDump(const std::string& path, Json* dump) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "sj_inspect: cannot read %s\n", path.c_str());
    return 2;
  }
  Parser parser(text);
  if (!parser.Parse(dump)) {
    std::fprintf(stderr, "sj_inspect: %s: JSON parse error: %s\n",
                 path.c_str(), parser.error().c_str());
    return 1;
  }
  SchemaErrors errors;
  if (!ValidateDump(*dump, &errors)) {
    std::fprintf(stderr, "sj_inspect: %s: schema violations:\n", path.c_str());
    for (const std::string& e : errors.errors()) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
    return 1;
  }
  return 0;
}

// A structurally complete specimen exercising every schema branch the
// validator checks; doubles as documentation of the format.
constexpr const char kSampleDump[] = R"json({
"flightdump_version": 1,
"pid": 4242,
"reason": {"kind": "check_failure", "detail": "join.cc:42: SJ_CHECK(x)",
           "fatal": true, "ts_ns": 5000000},
"process": {"pid": 4242, "rss_bytes": 1048576},
"events": {"capacity": 4096, "total": 3, "dropped": 0, "records": [
  {"seq": 1, "ts_ns": 1000000, "tid": 100, "type": "query_admitted",
   "severity": "info", "message": "join tree_join (op overlap)"},
  {"seq": 2, "ts_ns": 2000000, "tid": 100, "type": "check_failure",
   "severity": "fatal", "message": "join.cc:42: SJ_CHECK(x) — boom"}
]},
"activities": [
  {"slot": 0, "kind": "query.join", "label": "tree_join", "detail": "",
   "tid": 100, "idle": false, "start_ns": 900000, "age_ns": 4100000,
   "last_beat_ns": 1900000, "deadline_ns": 0},
  {"slot": 1, "kind": "pool.worker", "label": "worker",
   "detail": "pool0.worker1", "tid": 101, "idle": true, "start_ns": 1000,
   "age_ns": 4999000, "last_beat_ns": 4000000, "deadline_ns": 0}
],
"spans": {"repaired": false, "threads": [
  {"tid": 100, "name": "main", "total": 3, "dropped": 0, "events": [
    {"ph": "B", "name": "tree_join", "cat": "query.join", "ts_ns": 1000000},
    {"ph": "C", "name": "join.qual_pairs", "ts_ns": 1500000, "value": 12},
    {"ph": "E", "name": "tree_join", "ts_ns": 4900000}
  ]}
]},
"metrics": {"snapshot": {"counters": {"query.join.count": 1}},
"snapshot_age_ns": 120000,
"deltas": [{"ts_ns": 4000000, "changed": {"query.join.count": 1}}]},
"service": {
  "queries": {"ok": 12, "stopped": 1, "oversized": 0},
  "latency": {"window_ns": 4000000000, "count": 12, "mean_ns": 800000.0,
              "p50_ns": 524287, "p90_ns": 2097151, "p99_ns": 4194303},
  "slow_by_latency": [
    {"request_id": 7, "session": 3, "dataset": 1, "kind": "join",
     "strategy": "parallel_tree_join", "outcome": "ok",
     "end_ts_ns": 4500000, "wall_ns": 3900000, "queue_wait_ns": 120000,
     "pool_tasks": 8, "pages_read": 40, "pages_hit": 200,
     "pairs_examined": 900, "theta_tests": 450, "qual_pairs": 300,
     "nodes_accessed": 64, "matches": 17, "residual": 0.5}
  ],
  "slow_by_residual": [
    {"request_id": 9, "session": 3, "dataset": 1, "kind": "select",
     "strategy": "tree", "outcome": "deadline",
     "end_ts_ns": 4800000, "wall_ns": 600000, "queue_wait_ns": 0,
     "pool_tasks": 0, "pages_read": 2, "pages_hit": 30,
     "pairs_examined": 120, "theta_tests": 1, "qual_pairs": 0,
     "nodes_accessed": 12, "matches": 0, "residual": 0.008}
  ]
},
"watchdog": {"running": true, "ticks": 40, "stalls": 0, "deadline_hits": 0}
}
)json";

int SelfTest() {
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "selftest FAILED: %s\n", what);
      ++failures;
    }
  };

  // The embedded specimen must parse and validate.
  {
    Json dump;
    Parser parser(kSampleDump);
    expect(parser.Parse(&dump), "sample dump parses");
    SchemaErrors errors;
    expect(ValidateDump(dump, &errors), "sample dump validates");
    for (const std::string& e : errors.errors()) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
    // ...and render without crashing (output discarded).
    std::ostringstream sink;
    RenderSummary(dump, sink);
    RenderTimeline(dump, sink);
    expect(!sink.str().empty(), "sample dump renders");
    expect(sink.str().find("check_failure") != std::string::npos,
           "summary names the reason");
    expect(sink.str().find("pool0.worker1") != std::string::npos,
           "summary includes activity detail");
    expect(sink.str().find("slowest queries") != std::string::npos,
           "summary renders the slow-query table");
    expect(sink.str().find("parallel_tree_join") != std::string::npos,
           "slow-query table names the strategy");
  }

  // The service section is optional (absent/null), but when present its
  // records must carry the full QueryRecord schema.
  {
    Json dump;
    Parser parser(
        "{\"flightdump_version\": 1, \"service\": "
        "{\"queries\": {\"ok\": 1, \"stopped\": 0, \"oversized\": 0},"
        " \"latency\": {\"window_ns\": 1, \"count\": 0, \"p50_ns\": 0,"
        " \"p99_ns\": 0},"
        " \"slow_by_latency\": [{\"request_id\": 1}],"
        " \"slow_by_residual\": []}}");
    expect(parser.Parse(&dump), "service stub parses");
    SchemaErrors errors;
    expect(!ValidateDump(dump, &errors), "incomplete QueryRecord rejected");
    bool found = false;
    for (const std::string& e : errors.errors()) {
      if (e.find("slow_by_latency[0]") != std::string::npos) found = true;
    }
    expect(found, "schema error names the offending ring entry");
  }
  {
    Json dump;
    Parser parser("{\"service\": null}");
    expect(parser.Parse(&dump), "null service parses");
    SchemaErrors errors;
    ValidateDump(dump, &errors);
    for (const std::string& e : errors.errors()) {
      expect(e.find("service") == std::string::npos,
             "null service section is not an error");
    }
  }

  // Truncation (the expected corruption mode for a dump cut off mid-write
  // by process death) must be rejected as a parse error, not crash.
  {
    std::string truncated(kSampleDump, sizeof(kSampleDump) / 2);
    Json dump;
    Parser parser(truncated);
    expect(!parser.Parse(&dump), "truncated dump rejected");
  }

  // Wrong version and missing sections must be schema errors.
  {
    Json dump;
    Parser parser("{\"flightdump_version\": 2}");
    expect(parser.Parse(&dump), "version-2 stub parses");
    SchemaErrors errors;
    expect(!ValidateDump(dump, &errors), "version-2 stub fails validation");
  }
  {
    Json dump;
    Parser parser("[1, 2, 3]");
    expect(parser.Parse(&dump), "array document parses");
    SchemaErrors errors;
    expect(!ValidateDump(dump, &errors), "non-object document rejected");
  }

  // Parser unit checks: escapes, numbers, nesting guard.
  {
    Json v;
    expect(Parser(R"("a\"bA\n")").Parse(&v) && v.string == "a\"bA\n",
           "string escapes decode");
    expect(Parser("-12.5e2").Parse(&v) && v.number == -1250.0,
           "numbers decode");
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    expect(!Parser(deep).Parse(&v), "deep nesting rejected");
    expect(!Parser("{\"a\": 1,}").Parse(&v), "trailing comma rejected");
    expect(!Parser("{} {}").Parse(&v), "trailing content rejected");
  }

  if (failures == 0) std::printf("sj_inspect selftest: all checks passed\n");
  return failures == 0 ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sj_inspect [--timeline] <dump.flightdump.json>\n"
               "       sj_inspect --validate <dump...>\n"
               "       sj_inspect --selftest\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();

  if (args[0] == "--selftest") return SelfTest();

  if (args[0] == "--validate") {
    if (args.size() < 2) return Usage();
    int worst = 0;
    for (size_t i = 1; i < args.size(); ++i) {
      Json dump;
      int rc = LoadDump(args[i], &dump);
      if (rc == 0) std::printf("%s: ok\n", args[i].c_str());
      worst = std::max(worst, rc);
    }
    return worst;
  }

  bool timeline = false;
  std::string path;
  for (const std::string& arg : args) {
    if (arg == "--timeline") {
      timeline = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  Json dump;
  int rc = LoadDump(path, &dump);
  if (rc != 0) return rc;
  std::ostringstream out;
  RenderSummary(dump, out);
  if (timeline) RenderTimeline(dump, out);
  std::fputs(out.str().c_str(), stdout);
  return 0;
}
