// sj_server — standalone query-service daemon (DESIGN.md §12).
//
// Builds seeded demo datasets (the same generator the tests and the load
// bench use), starts the admission-controlled query service on a Unix
// socket, prints the socket path, and serves until SIGINT/SIGTERM.
// Useful for poking the wire protocol by hand and as the server half of
// ad-hoc load experiments:
//
//   sj_server [--socket=PATH] [--threads=N] [--max-inflight=N]
//             [--default-deadline-ms=N] [--tuples=N]
//
// Dataset 0 is a 400-tuple pair (fast queries), dataset 1 a 1200-tuple
// pair (long all-match joins — handy for exercising deadlines and
// cancels). Tools may print to stdout; the service itself reports only
// through metrics and the event log.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "exec/frozen_tree.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "server/server.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

using namespace spatialjoin;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

struct FrozenPair {
  exec::FrozenTree r;
  exec::FrozenTree s;
};

FrozenPair MakeFrozenPair(uint64_t seed_r, uint64_t seed_s, int64_t tuples) {
  DiskManager disk(4000);
  BufferPool pool(&disk, 2048);
  Rectangle world(0, 0, 600, 600);
  Schema schema({{"id", ValueType::kInt64}, {"box", ValueType::kRectangle}});
  Relation r("r", schema, &pool);
  Relation s("s", schema, &pool);
  RTree r_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RTree s_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen_r(world, seed_r);
  RectGenerator gen_s(world, seed_s);
  for (int64_t i = 0; i < tuples; ++i) {
    Rectangle box_r = gen_r.NextRect(2, 30);
    Rectangle box_s = gen_s.NextRect(2, 30);
    r_rtree.Insert(box_r, r.Insert(Tuple({Value(i), Value(box_r)})));
    s_rtree.Insert(box_s, s.Insert(Tuple({Value(i), Value(box_s)})));
  }
  RTreeGenTree r_adapter(&r_rtree, &r, 1);
  RTreeGenTree s_adapter(&s_rtree, &s, 1);
  return {exec::FrozenTree::Materialize(r_adapter),
          exec::FrozenTree::Materialize(s_adapter)};
}

const char* StringFlag(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

int64_t IntFlag(int argc, char** argv, const char* name, int64_t fallback) {
  const char* value = StringFlag(argc, argv, name);
  return value ? std::atoll(value) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t threads = IntFlag(argc, argv, "--threads", 0);
  const int64_t tuples = IntFlag(argc, argv, "--tuples", 400);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = threads > 0 ? static_cast<int>(threads)
                                  : std::min(8, std::max(2, hw));

  exec::ThreadPool pool(workers);
  server::Server::Options options;
  if (const char* path = StringFlag(argc, argv, "--socket")) {
    options.socket_path = path;
  }
  options.max_inflight =
      static_cast<int>(IntFlag(argc, argv, "--max-inflight", 0));
  options.default_deadline_ns =
      IntFlag(argc, argv, "--default-deadline-ms", 0) * 1'000'000;

  server::Server service(&pool, options);
  {
    FrozenPair small = MakeFrozenPair(41, 42, tuples);
    FrozenPair heavy = MakeFrozenPair(51, 52, tuples * 3);
    service.RegisterDataset(std::move(small.r), std::move(small.s));
    service.RegisterDataset(std::move(heavy.r), std::move(heavy.s));
  }
  SJ_CHECK_OK(service.Start());
  std::cout << "sj_server listening on " << service.socket_path() << "\n"
            << "datasets: 0 (" << tuples << " tuples), 1 (" << tuples * 3
            << " tuples); workers=" << workers
            << " max_inflight=" << service.max_inflight()
            << "\n" << std::flush;

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  service.Stop();
  server::QueryScheduler::Stats stats = service.scheduler_stats();
  std::cout << "sj_server stopped: admitted="
            << stats.admitted << " rejected=" << stats.rejected
            << " completed=" << stats.completed << "\n";
  return 0;
}
