// Reproduces paper Fig. 12: expected cost of a general spatial join under
// the NO-LOC matching distribution. The paper reports a crossover near
// p ≈ 1e-8; our D_III reconstruction moves it to p ≈ 5e-2 (see
// EXPERIMENTS.md), so the sweep extends into that regime.
#include "figure_common.h"

int main() {
  spatialjoin::bench::RunJoinFigure(
      "Figure 12 — JOIN, NO-LOC distribution",
      spatialjoin::MatchDistribution::kNoLoc,
      "bench_fig12_join_noloc", /*p_lo=*/1e-12, /*p_hi=*/0.3);
  return 0;
}
