// Experiment E1 — model validation for the SELECT cost formulas: runs the
// Monte-Carlo simulator (Algorithm SELECT on a virtual balanced k-ary
// tree whose Θ-oracle draws at the model's marginal probabilities) and
// compares measured means against the closed-form predictions that the
// Fig. 8–10 benches plot.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/math_util.h"
#include "common/stats.h"
#include "costmodel/select_cost.h"
#include "costmodel/yao.h"
#include "workload/model_simulator.h"

using namespace spatialjoin;

namespace {

void RunValidation(MatchDistribution dist, const ModelParameters& base) {
  std::cout << "-- " << MatchDistributionName(dist) << " --\n";
  std::printf("%10s %11s %8s %13s %12s %12s %10s %10s\n", "p",
              "exam(sim)", "+-SE", "exam(fml)", "io-u(sim)", "io-u(fml)",
              "io-c(sim)", "io-c(fml)");
  for (double p : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    ModelParameters params = base;
    params.p = p;
    PiTable pi(dist, params.n, params.k, params.p);

    // Closed forms (in node counts / page counts, no C_θ / C_IO scaling).
    double examined_formula = 1.0;
    double io_uncl_formula = 0.0;
    double io_cl_formula = 0.0;
    for (int i = 0; i < params.n; ++i) {
      examined_formula += pi.pi(params.h, i) * DPow(params.k, i + 1);
      io_uncl_formula +=
          Yao(std::ceil(pi.pi(params.h, i) * DPow(params.k, i + 1)),
              static_cast<double>(params.RelationPages()),
              static_cast<double>(params.N()));
      io_cl_formula +=
          Yao(std::ceil(pi.pi(params.h, i) * DPow(params.k, i)),
              std::ceil(DPow(params.k, i + 1) /
                        static_cast<double>(params.m())),
              DPow(params.k, i));
    }

    RunningStat examined, io_uncl, io_cl;
    const int trials = 1000;
    for (int t = 0; t < trials; ++t) {
      SimulatedSelect sim =
          SimulateSelect(params, dist, 90000 + 1000 * t);
      examined.Add(static_cast<double>(sim.nodes_examined));
      io_uncl.Add(static_cast<double>(sim.pages_unclustered));
      io_cl.Add(static_cast<double>(sim.pages_clustered));
    }
    double se = examined.stddev() / std::sqrt(static_cast<double>(trials));
    std::printf("%10.3f %11.1f %8.1f %13.1f %12.1f %12.1f %10.1f %10.1f\n",
                p, examined.mean(), se, examined_formula, io_uncl.mean(),
                io_uncl_formula, io_cl.mean(), io_cl_formula);
  }
  std::cout << "(simulated means carry the printed standard error; the "
               "formula's per-level ceilings make it conservative at "
               "low p)\n\n";
}

}  // namespace

int main() {
  ModelParameters params;  // paper tree shape, but h follows n
  params.n = 6;
  params.k = 10;
  params.h = 6;
  std::cout << "E1 — Monte-Carlo validation of the SELECT cost model\n"
            << "virtual tree: n=" << params.n << " k=" << params.k
            << " (N=" << params.N() << "), selector at height " << params.h
            << ", 1000 trials per point\n"
            << "formulas: examined = 1 + sum pi(h,i)k^(i+1); I/O = the "
               "per-level Yao sums of C_IIa / C_IIb\n\n";
  RunValidation(MatchDistribution::kNoLoc, params);
  RunValidation(MatchDistribution::kHiLoc, params);
  // UNIFORM couples the whole tree to the root draw: huge variance, so
  // use more trials at a tamer p.
  std::cout << "(UNIFORM omitted from the table: the hierarchical "
               "coupling makes one draw decide the whole traversal; see "
               "tests/model_simulator_test.cc for its mean-convergence "
               "check.)\n";
  return 0;
}
