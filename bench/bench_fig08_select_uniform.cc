// Reproduces paper Fig. 8: expected cost of a spatial selection under the
// UNIFORM matching distribution, strategies I / IIa / IIb / III.
#include "figure_common.h"

int main() {
  spatialjoin::bench::RunSelectFigure(
      "Figure 8 — SELECT, UNIFORM distribution",
      spatialjoin::MatchDistribution::kUniform);
  return 0;
}
