// Reproduces paper Fig. 8: expected cost of a spatial selection under the
// UNIFORM matching distribution, strategies I / IIa / IIb / III.
#include "figure_common.h"

int main() {
  spatialjoin::bench::RunSelectFigure(
      "Figure 8 — SELECT, UNIFORM distribution",
      spatialjoin::MatchDistribution::kUniform,
      "bench_fig08_select_uniform");
  return 0;
}
