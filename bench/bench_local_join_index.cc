// Extension A3 — the paper's §5 future work: local join indices as a
// mixture of strategy II (generalization trees) and strategy III (join
// indices). For a HI-LOC-style self-join workload (objects overlap mostly
// within their subtree), we compare query-time θ work and update cost of
// (a) pure tree join, (b) pure join index, (c) local join indices at
// several partition heights.
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/join.h"
#include "core/join_index.h"
#include "core/local_join_index.h"
#include "core/memory_gentree.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"

using namespace spatialjoin;

namespace {

// A technical-interior-node copy of a generated hierarchy: application
// objects only at heights >= app_height (LocalJoinIndex's requirement).
std::unique_ptr<MemoryGenTree> LeafHeavyCopy(const MemoryGenTree& src,
                                             int app_height) {
  auto out = std::make_unique<MemoryGenTree>();
  for (NodeId n = 0; n < src.num_nodes(); ++n) {
    TupleId tuple = src.HeightOf(n) >= app_height ? src.TupleOf(n)
                                                  : kInvalidTupleId;
    out->AddNode(src.ParentOf(n), src.Geometry(n), tuple, src.LabelOf(n));
  }
  return out;
}

}  // namespace

int main() {
  DiskManager disk(2000);
  BufferPool pool(&disk, 4096);
  HierarchyOptions options;
  options.height = 4;
  options.fanout = 4;  // 341 nodes; 320 application objects at h>=2
  options.shrink = 0.98;
  GeneratedHierarchy h = GenerateHierarchy(
      Rectangle(0, 0, 1024, 1024), options, &pool,
      RelationLayout::kClustered);
  auto tree = LeafHeavyCopy(*h.tree, 2);
  OverlapsOp op;

  int64_t app_objects = 0;
  for (NodeId n = 0; n < tree->num_nodes(); ++n) {
    app_objects += tree->IsApplicationNode(n);
  }

  std::cout << "A3 — local join indices (self-join of " << app_objects
            << " application objects; overlap operator; shrink="
            << options.shrink << " keeps matches subtree-local)\n\n";
  std::printf("%-26s %12s %12s %12s %12s\n", "strategy", "build-theta",
              "query-theta", "matches", "update-theta");

  // (a) pure tree join: no precompute; update = tree insert only.
  JoinResult tree_join = TreeJoin(*tree, *tree, op);
  // Remove the diagonal (a,a) pairs to compare with the local index's
  // distinct-pair semantics.
  int64_t tree_matches = 0;
  for (const auto& m : tree_join.matches) tree_matches += m.first != m.second;
  std::printf("%-26s %12d %12lld %12lld %12s\n", "tree join (II)", 0,
              static_cast<long long>(tree_join.theta_tests +
                                     tree_join.theta_upper_tests),
              static_cast<long long>(tree_matches), "~0");

  // (b) pure join index: precompute all pairs; update tests all objects.
  int64_t ji_build = app_objects * (app_objects - 1);
  std::printf("%-26s %12lld %12d %12s %12lld\n", "join index (III)",
              static_cast<long long>(ji_build), 0, "(same)",
              static_cast<long long>(app_objects));

  // (c) local join indices at each feasible partition height.
  for (int ph = 1; ph <= 2; ++ph) {
    DiskManager ji_disk(2000);
    BufferPool ji_pool(&ji_disk, 4096);
    LocalJoinIndex local(&ji_pool, tree.get(), ph, 100);
    int64_t build = local.Build(op);
    JoinResult result = local.Execute(op);
    int64_t update = local.UpdateCost(Rectangle(100, 100, 104, 104));
    char name[64];
    std::snprintf(name, sizeof(name), "local JI (partition h=%d)", ph);
    std::printf("%-26s %12lld %12lld %12lld %12lld\n", name,
                static_cast<long long>(build),
                static_cast<long long>(result.theta_tests +
                                       result.theta_upper_tests),
                static_cast<long long>(result.matches.size()),
                static_cast<long long>(update));
  }

  std::cout << "\nReading: the local index interpolates between the pure "
               "strategies — most matches are precomputed (query theta "
               "close to the join index's 0), while an update touches one "
               "partition instead of the whole relation (the paper's "
               "anticipated sweet spot, §5).\n";
  return 0;
}
