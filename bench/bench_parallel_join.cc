// Experiment E-PAR — the exec layer's parallel strategies on a UNIFORM
// workload: Algorithm JOIN with QualPairs sharded over the work-stealing
// pool, and the PBSM-style partitioned join, swept over thread counts and
// grid granularities. Every run is verified against the sequential
// result before its timing is reported, and the trees plus the pool are
// audited after the probes. Emits bench_parallel_join.metrics.json with
// the speedup curves (plus the host's hardware_threads, so a 1-core CI
// runner's flat curve is distinguishable from a real regression).
//
// Usage: bench_parallel_join [--threads=N] [--trace=out.trace.json]
// (N pins the sweep to one width; default sweeps 1, 2, 4, 8. --trace
// enables span tracing and writes a Perfetto-loadable timeline with one
// track per worker thread.)
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "audit/exec_audit.h"
#include "audit/rtree_audit.h"
#include "core/join.h"
#include "core/select.h"
#include "core/spatial_join.h"
#include "exec/frozen_tree.h"
#include "exec/parallel_join.h"
#include "exec/parallel_select.h"
#include "exec/partitioned_join.h"
#include "exec/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

#include "figure_common.h"

using namespace spatialjoin;
using spatialjoin::bench::TimeBestOf;

namespace {

struct Fixture {
  DiskManager disk{4000};
  BufferPool pool{&disk, 1024};
  std::unique_ptr<Relation> r;
  std::unique_ptr<Relation> s;
  std::unique_ptr<RTree> r_rtree;
  std::unique_ptr<RTree> s_rtree;
  std::unique_ptr<RTreeGenTree> r_tree;
  std::unique_ptr<RTreeGenTree> s_tree;
};

std::unique_ptr<Fixture> MakeFixture(int n_tuples) {
  auto f = std::make_unique<Fixture>();
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  f->r = std::make_unique<Relation>("r", schema, &f->pool,
                                    RelationLayout::kClustered, 300);
  f->s = std::make_unique<Relation>("s", schema, &f->pool,
                                    RelationLayout::kClustered, 300);
  f->r_rtree = std::make_unique<RTree>(&f->pool, RTreeSplit::kQuadratic);
  f->s_rtree = std::make_unique<RTree>(&f->pool, RTreeSplit::kQuadratic);
  Rectangle world(0, 0, 2000, 2000);
  RectGenerator gen_r(world, 11);
  RectGenerator gen_s(world, 22);
  for (int64_t i = 0; i < n_tuples; ++i) {
    Rectangle br = gen_r.NextRect(5, 40);
    Rectangle bs = gen_s.NextRect(5, 40);
    f->r_rtree->Insert(br, f->r->Insert(Tuple({Value(i), Value(br)})));
    f->s_rtree->Insert(bs, f->s->Insert(Tuple({Value(i), Value(bs)})));
  }
  f->r_tree = std::make_unique<RTreeGenTree>(f->r_rtree.get(), f->r.get(), 1);
  f->s_tree = std::make_unique<RTreeGenTree>(f->s_rtree.get(), f->s.get(), 1);
  return f;
}

constexpr int kReps = 3;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  std::vector<int> widths = {1, 2, 4, 8};
  if (args.threads > 0) widths = {args.threads};

  const int hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::cout << "E-PAR — parallel join strategies, UNIFORM workload "
            << "(hardware threads: " << hardware_threads << ")\n";

  MetricsRegistry::Global().ResetAll();
  auto f = MakeFixture(1500);
  OverlapsOp op;

  // Snapshot once; the sweep then measures pure compute scaling.
  exec::FrozenTree r_frozen = exec::FrozenTree::Materialize(*f->r_tree);
  exec::FrozenTree s_frozen = exec::FrozenTree::Materialize(*f->s_tree);

  JoinResult baseline;
  double baseline_ns = TimeBestOf(kReps, [&] {
    baseline = TreeJoin(r_frozen, s_frozen, op);
  });
  std::printf("%-28s wall=%10.0fns matches=%zu\n", "tree_join(sequential)",
              baseline_ns, baseline.matches.size());

  std::ostringstream curve_json;
  JsonWriter curves(curve_json);
  curves.BeginObject();
  curves.KV("hardware_threads", int64_t{hardware_threads});
  curves.KV("baseline_wall_ns", baseline_ns);
  curves.KV("matches", static_cast<int64_t>(baseline.matches.size()));

  // --- Thread sweep: ParallelTreeJoin ------------------------------------
  bool all_equal = true;
  curves.Key("parallel_tree_join");
  curves.BeginArray();
  for (int width : widths) {
    exec::ThreadPool workers(width);
    JoinResult result;
    double wall_ns = TimeBestOf(kReps, [&] {
      result = exec::ParallelTreeJoin(r_frozen, s_frozen, op, &workers);
    });
    bool equal = result.matches == baseline.matches &&
                 result.theta_tests == baseline.theta_tests;
    all_equal = all_equal && equal;
    audit::AuditReport pool_audit = audit::AuditThreadPool(workers);
    double speedup = wall_ns > 0.0 ? baseline_ns / wall_ns : 0.0;
    std::printf("parallel_tree_join  W=%d      wall=%10.0fns speedup=%.2fx "
                "stolen=%lld %s%s\n",
                width, wall_ns, speedup,
                static_cast<long long>(workers.stats().tasks_stolen),
                equal ? "results-identical" : "RESULT MISMATCH",
                pool_audit.ok() ? "" : " POOL-AUDIT-FAILED");
    curves.BeginObject();
    curves.KV("threads", int64_t{width});
    curves.KV("wall_ns", wall_ns);
    curves.KV("speedup", speedup);
    curves.KV("results_identical", equal);
    curves.KV("pool_audit_ok", pool_audit.ok());
    curves.KV("tasks_stolen", workers.stats().tasks_stolen);
    curves.EndObject();
  }
  curves.EndArray();

  // --- Thread sweep x grid sweep: PartitionedJoin -------------------------
  std::vector<exec::JoinItem> r_items = exec::CollectJoinItems(*f->r, 1);
  std::vector<exec::JoinItem> s_items = exec::CollectJoinItems(*f->s, 1);
  JoinResult sorted_baseline = baseline;
  NormalizeMatches(&sorted_baseline);

  curves.Key("partitioned_join");
  curves.BeginArray();
  for (int width : widths) {
    for (int grid : {0, 8, 16, 32}) {
      exec::ThreadPool workers(width);
      exec::PartitionedJoinOptions options;
      options.grid_cols = grid;
      options.grid_rows = grid;
      JoinResult result;
      double wall_ns = TimeBestOf(kReps, [&] {
        result = exec::PartitionedJoin(r_items, s_items, op, &workers,
                                       options);
      });
      NormalizeMatches(&result);
      bool equal = result.matches == sorted_baseline.matches;
      all_equal = all_equal && equal;
      double speedup = wall_ns > 0.0 ? baseline_ns / wall_ns : 0.0;
      std::printf("partitioned_join    W=%d g=%-3d wall=%10.0fns "
                  "speedup=%.2fx %s\n",
                  width, grid, wall_ns, speedup,
                  equal ? "results-identical" : "RESULT MISMATCH");
      curves.BeginObject();
      curves.KV("threads", int64_t{width});
      curves.KV("grid", int64_t{grid});
      curves.KV("wall_ns", wall_ns);
      curves.KV("speedup_vs_sequential_tree", speedup);
      curves.KV("results_identical", equal);
      curves.EndObject();
    }
  }
  curves.EndArray();

  // --- Timeline probe ----------------------------------------------------
  // One sequential JOIN and a SELECT (verified against ParallelSelect) at
  // the *tail* of the run: their per-level join.level / select.level spans
  // are the freshest events in the main thread's ring, so they survive
  // wraparound in long sweeps and always appear in --trace exports.
  JoinResult tail_join = TreeJoin(r_frozen, s_frozen, op);
  bool tail_equal = tail_join.matches == baseline.matches;
  Value selector(Rectangle(500, 500, 1100, 1100));
  SelectResult select_seq = SpatialSelect(selector, r_frozen, op);
  bool select_equal = false;
  {
    exec::ThreadPool select_workers(widths.back());
    SelectResult select_par =
        exec::ParallelSelect(selector, r_frozen, op, &select_workers);
    select_equal =
        select_par.matching_tuples == select_seq.matching_tuples &&
        select_par.theta_tests == select_seq.theta_tests;
  }
  all_equal = all_equal && tail_equal && select_equal;
  std::printf("%-28s tuples=%zu %s\n", "select(seq vs parallel)",
              select_seq.matching_tuples.size(),
              select_equal && tail_equal ? "results-identical"
                                         : "RESULT MISMATCH");
  curves.KV("select_tuples",
            static_cast<int64_t>(select_seq.matching_tuples.size()));
  curves.KV("select_results_identical", select_equal);
  curves.KV("all_results_identical", all_equal);
  curves.EndObject();

  // Post-probe structural audits: the source trees must be untouched by
  // the read-only parallel probes.
  audit::AuditReport tree_audit = audit::AuditRTree(*f->r_rtree);
  tree_audit.Merge(audit::AuditRTree(*f->s_rtree));
  std::cout << (all_equal ? "\nall parallel results identical to sequential\n"
                          : "\nRESULT MISMATCH — see rows above\n")
            << (tree_audit.ok() ? "tree audits clean\n"
                                : tree_audit.ToString());

  bench::WriteMetricsArtifact("bench_parallel_join",
                              {{"parallel", curve_json.str()},
                               {"audit", tree_audit.ToJson()}});
  bench::MaybeWriteTrace(args);
  bench::MaybeWriteFlightDump(args);
  return all_equal && tree_audit.ok() ? 0 : 1;
}
