// E-SVC — closed-loop load on the query service front-end (DESIGN.md
// §12): a server over the work-stealing pool, 16 pipelined client
// connections each keeping a 64-request window in flight (1024 offered
// concurrent requests — past the 256-slot admission bound, so the bench
// exercises backpressure by construction), mixed SELECT and JOIN
// requests, then one past-deadline probe and one cancel-mid-flight
// probe against a heavyweight dataset.
//
// Emits bench_service_load.metrics.json with the run configuration, the
// protocol-level invariants (every reply accounted, the admission bound
// respected, rejections observed, deadline/cancel probes returning
// DEADLINE_EXCEEDED / CANCELLED), the timing-dependent admitted/rejected
// split under "load", and client-side p50/p90/p99 reply latency plus
// throughput under the latency keys scripts/compare_bench.py gates with
// --latency-rel-tol (ignored by default — absolute latency is
// machine-dependent).
//
// Usage: bench_service_load [--threads=N] [--clients=N] [--window=N]
//                           [--requests=N] [--trace=out.trace.json]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "audit/exec_audit.h"
#include "exec/frozen_tree.h"
#include "exec/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

#include "figure_common.h"

using namespace spatialjoin;
using namespace spatialjoin::server;

namespace {

struct FrozenPair {
  exec::FrozenTree r;
  exec::FrozenTree s;
};

FrozenPair MakeFrozenPair(uint64_t seed_r, uint64_t seed_s, int64_t tuples) {
  DiskManager disk(4000);
  BufferPool pool(&disk, 2048);
  Rectangle world(0, 0, 600, 600);
  Schema schema({{"id", ValueType::kInt64}, {"box", ValueType::kRectangle}});
  Relation r("r", schema, &pool);
  Relation s("s", schema, &pool);
  RTree r_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RTree s_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen_r(world, seed_r);
  RectGenerator gen_s(world, seed_s);
  for (int64_t i = 0; i < tuples; ++i) {
    Rectangle box_r = gen_r.NextRect(2, 30);
    Rectangle box_s = gen_s.NextRect(2, 30);
    r_rtree.Insert(box_r, r.Insert(Tuple({Value(i), Value(box_r)})));
    s_rtree.Insert(box_s, s.Insert(Tuple({Value(i), Value(box_s)})));
  }
  RTreeGenTree r_adapter(&r_rtree, &r, 1);
  RTreeGenTree s_adapter(&s_rtree, &s, 1);
  return {exec::FrozenTree::Materialize(r_adapter),
          exec::FrozenTree::Materialize(s_adapter)};
}

// One client's closed loop: prime `window` pipelined requests, then for
// every reply retire-and-replace until `quota` requests have been sent,
// and drain. The window — not a rate — fixes this connection's offered
// concurrency.
struct ClientOutcome {
  int64_t ok = 0;
  int64_t rejected = 0;
  int64_t other = 0;           // anything but RESULT / RESOURCE_EXHAUSTED
  std::vector<int64_t> ok_latency_ns;
  bool transport_ok = true;
};

struct Outstanding {
  uint64_t id;
  int64_t send_ns;
};

void RunClient(const std::string& socket_path, int window, int quota,
               int client_index, ClientOutcome* out) {
  Result<std::unique_ptr<ServiceClient>> client =
      ServiceClient::Connect(socket_path);
  if (!client.ok()) {
    out->transport_ok = false;
    return;
  }
  out->ok_latency_ns.reserve(static_cast<size_t>(quota));

  SelectRequest select_request;
  select_request.dataset_id = 0;
  select_request.strategy = SelectStrategy::kTree;
  select_request.op_code = static_cast<uint8_t>(WireOp::kOverlaps);
  select_request.selector = Rectangle(100, 100, 400, 400);
  JoinRequest join_request;
  join_request.dataset_id = 0;
  join_request.strategy = JoinStrategy::kTreeJoin;
  join_request.op_code = static_cast<uint8_t>(WireOp::kOverlaps);

  std::deque<Outstanding> pending;
  int sent = 0;
  auto send_one = [&]() -> bool {
    const bool join = (sent + client_index) % 2 == 0;
    const int64_t now = MonotonicNowNs();
    Result<uint64_t> id = join ? client.value()->SendJoin(join_request)
                               : client.value()->SendSelect(select_request);
    if (!id.ok()) {
      out->transport_ok = false;
      return false;
    }
    pending.push_back({id.value(), now});
    ++sent;
    return true;
  };

  for (int i = 0; i < window && sent < quota; ++i) {
    if (!send_one()) return;
  }
  while (!pending.empty()) {
    Outstanding front = pending.front();
    pending.pop_front();
    Result<Reply> reply = client.value()->WaitReply(front.id);
    if (!reply.ok()) {
      out->transport_ok = false;
      return;
    }
    if (reply.value().type == MessageType::kResult) {
      ++out->ok;
      out->ok_latency_ns.push_back(MonotonicNowNs() - front.send_ns);
    } else if (reply.value().error_code == StatusCode::kResourceExhausted) {
      ++out->rejected;
    } else {
      ++out->other;
    }
    if (sent < quota && !send_one()) return;
  }
}

int64_t Percentile(std::vector<int64_t>* sorted_in_place, double q) {
  if (sorted_in_place->empty()) return 0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atoi(argv[i] + len + 1);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = args.threads > 0 ? args.threads : std::min(8, std::max(2, hw));
  const int clients = IntFlag(argc, argv, "--clients", 16);
  const int window = IntFlag(argc, argv, "--window", 64);
  const int quota = IntFlag(argc, argv, "--requests", 768);  // per client
  const int offered_inflight = clients * window;
  constexpr int kMaxInflight = 256;

  std::cout << "E-SVC — query service closed-loop load (workers=" << workers
            << " clients=" << clients << " window=" << window
            << " offered inflight=" << offered_inflight
            << " admission bound=" << kMaxInflight << ")\n";

  MetricsRegistry::Global().ResetAll();
  exec::ThreadPool pool(workers);
  Server::Options options;
  options.max_inflight = kMaxInflight;
  Server service(&pool, options);
  {
    FrozenPair small = MakeFrozenPair(41, 42, 400);
    FrozenPair heavy = MakeFrozenPair(51, 52, 1200);
    service.RegisterDataset(std::move(small.r), std::move(small.s));
    service.RegisterDataset(std::move(heavy.r), std::move(heavy.s));
  }
  SJ_CHECK_OK(service.Start());

  // --- Closed-loop mixed load --------------------------------------------
  std::vector<ClientOutcome> outcomes(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  const int64_t load_start_ns = MonotonicNowNs();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(RunClient, service.socket_path(), window, quota, c,
                         &outcomes[static_cast<size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();
  const double load_wall_ns =
      static_cast<double>(MonotonicNowNs() - load_start_ns);

  int64_t ok = 0, rejected = 0, other = 0;
  bool transport_ok = true;
  std::vector<int64_t> latencies;
  for (ClientOutcome& outcome : outcomes) {
    ok += outcome.ok;
    rejected += outcome.rejected;
    other += outcome.other;
    transport_ok = transport_ok && outcome.transport_ok;
    latencies.insert(latencies.end(), outcome.ok_latency_ns.begin(),
                     outcome.ok_latency_ns.end());
  }
  const int64_t total = int64_t{clients} * quota;
  const bool all_accounted = transport_ok && (ok + rejected + other == total);
  const double throughput_qps =
      load_wall_ns > 0 ? static_cast<double>(ok) * 1e9 / load_wall_ns : 0.0;
  const int64_t p50 = Percentile(&latencies, 0.50);
  const int64_t p90 = Percentile(&latencies, 0.90);
  const int64_t p99 = Percentile(&latencies, 0.99);
  const int64_t worst = latencies.empty() ? 0 : latencies.back();

  QueryScheduler::Stats sched = service.scheduler_stats();
  const bool bound_respected = sched.peak_inflight <= kMaxInflight;
  const bool rejections_observed = rejected > 0 && sched.rejected >= rejected;
  // A scaled-down run (CI under TSan) may legitimately never exceed the
  // admission bound; the rejection invariant only gates the exit code
  // when the offered load makes rejections certain. The artifact still
  // records it, and the regression gate compares the full-scale run
  // (whose seeded baseline has both booleans true).
  const bool rejections_expected = offered_inflight > kMaxInflight;

  std::printf("load: %lld ok, %lld rejected, %lld other of %lld "
              "(%.0f qps over successful replies)\n",
              static_cast<long long>(ok), static_cast<long long>(rejected),
              static_cast<long long>(other), static_cast<long long>(total),
              throughput_qps);
  std::printf("latency ns: p50=%lld p90=%lld p99=%lld max=%lld\n",
              static_cast<long long>(p50), static_cast<long long>(p90),
              static_cast<long long>(p99), static_cast<long long>(worst));
  std::printf("scheduler: admitted=%lld rejected=%lld peak_inflight=%lld "
              "(bound %d %s)\n",
              static_cast<long long>(sched.admitted),
              static_cast<long long>(sched.rejected),
              static_cast<long long>(sched.peak_inflight), kMaxInflight,
              bound_respected ? "respected" : "EXCEEDED");

  // --- Deadline and cancel probes ----------------------------------------
  // The heavyweight all-match join runs orders of magnitude past 2ms, so
  // both probes land deterministically mid-flight.
  bool deadline_probe_ok = false;
  bool cancel_probe_ok = false;
  {
    Result<std::unique_ptr<ServiceClient>> probe =
        ServiceClient::Connect(service.socket_path());
    SJ_CHECK(probe.ok());
    JoinRequest heavy;
    heavy.dataset_id = 1;
    heavy.strategy = JoinStrategy::kTreeJoin;
    heavy.op_code = static_cast<uint8_t>(WireOp::kWithinDistance);
    heavy.op_param = 1200.0;  // every pair within distance: maximal work
    heavy.deadline_ns = 2'000'000;
    Result<Reply> reply = probe.value()->Join(heavy);
    deadline_probe_ok = reply.ok() &&
                        reply.value().type == MessageType::kError &&
                        reply.value().error_code ==
                            StatusCode::kDeadlineExceeded;

    heavy.deadline_ns = 0;
    Result<uint64_t> id = probe.value()->SendJoin(heavy);
    SJ_CHECK(id.ok());
    SJ_CHECK_OK(probe.value()->Cancel(id.value()));
    reply = probe.value()->WaitReply(id.value());
    cancel_probe_ok = reply.ok() &&
                      reply.value().type == MessageType::kError &&
                      reply.value().error_code == StatusCode::kCancelled;
  }
  std::printf("deadline probe: %s, cancel probe: %s\n",
              deadline_probe_ok ? "DEADLINE_EXCEEDED" : "UNEXPECTED REPLY",
              cancel_probe_ok ? "CANCELLED" : "UNEXPECTED REPLY");

  service.Stop();
  audit::AuditReport pool_audit = audit::AuditThreadPool(pool);

  const bool sustained_kilo_inflight = offered_inflight >= 1000;
  const bool all_ok = all_accounted && other == 0 && bound_respected &&
                      (rejections_observed || !rejections_expected) &&
                      deadline_probe_ok && cancel_probe_ok && ok > 0 &&
                      pool_audit.ok();

  std::ostringstream load_json;
  JsonWriter w(load_json);
  w.BeginObject();
  w.KV("workers_flagged", int64_t{args.threads});
  w.KV("clients", int64_t{clients});
  w.KV("window", int64_t{window});
  w.KV("offered_inflight", int64_t{offered_inflight});
  w.KV("admission_bound", int64_t{kMaxInflight});
  w.KV("requests_total", total);
  w.Key("invariants");
  w.BeginObject();
  w.KV("all_replies_accounted", all_accounted);
  w.KV("no_unexpected_errors", other == 0);
  w.KV("admission_bound_respected", bound_respected);
  w.KV("rejections_observed", rejections_observed);
  w.KV("sustained_kilo_inflight", sustained_kilo_inflight);
  w.KV("deadline_probe_deadline_exceeded", deadline_probe_ok);
  w.KV("cancel_probe_cancelled", cancel_probe_ok);
  w.KV("some_queries_succeeded", ok > 0);
  w.KV("pool_audit_ok", pool_audit.ok());
  w.EndObject();
  // Timing-dependent admitted/rejected split: informational, ignored by
  // the regression gate ("*.load.*").
  w.Key("load");
  w.BeginObject();
  w.KV("ok", ok);
  w.KV("rejected", rejected);
  w.KV("other", other);
  w.KV("scheduler_admitted", sched.admitted);
  w.KV("scheduler_rejected", sched.rejected);
  w.KV("scheduler_peak_inflight", sched.peak_inflight);
  w.EndObject();
  // Latency keys: ignored by default, gated by --latency-rel-tol.
  w.Key("latency_ns");
  w.BeginObject();
  w.KV("p50", p50);
  w.KV("p90", p90);
  w.KV("p99", p99);
  w.KV("max", worst);
  w.EndObject();
  w.KV("throughput_qps", throughput_qps);
  w.KV("wall_ns", load_wall_ns);
  w.EndObject();

  bench::WriteMetricsArtifact("bench_service_load",
                              {{"service_load", load_json.str()},
                               {"audit", pool_audit.ToJson()}});
  bench::MaybeWriteTrace(args);
  bench::MaybeWriteFlightDump(args);
  std::cout << (all_ok ? "service load invariants hold\n"
                       : "SERVICE LOAD INVARIANT FAILED — see above\n");
  return all_ok ? 0 : 1;
}
