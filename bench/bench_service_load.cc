// E-SVC — closed-loop load on the query service front-end (DESIGN.md
// §12): a server over the work-stealing pool, 16 pipelined client
// connections each keeping a 64-request window in flight (1024 offered
// concurrent requests — past the 256-slot admission bound, so the bench
// exercises backpressure by construction), mixed SELECT and JOIN
// requests, then one past-deadline probe and one cancel-mid-flight
// probe against a heavyweight dataset.
//
// The load then runs four measured times, interleaved (DESIGN.md §13):
// two *quiet* phases — telemetry compiled in and attributing every
// query, but with no readers — and two *polled* phases with a
// concurrent STATS client hammering the server throughout, after a
// short warmup phase that absorbs cold caches. Best-of-two polled is
// compared against best-of-two quiet (`telemetry_overhead_within_bound`:
// p99 and throughput within 5%, plus a noise floor self-calibrated from
// the quiet-vs-quiet spread — closed-loop saturated tails vary far more
// run-to-run than any telemetry cost, so a single-phase comparison
// would gate on scheduler luck, not on introspection overhead). The
// final STATS snapshot must account for exactly the queries the clients
// saw succeed across all five phases (`stats_attribution_exact`).
//
// Emits bench_service_load.metrics.json with the run configuration, the
// protocol-level invariants (every reply accounted, the admission bound
// respected, rejections observed, deadline/cancel probes returning
// DEADLINE_EXCEEDED / CANCELLED, the telemetry invariants above), the
// timing-dependent admitted/rejected splits under "load"/"polled", and
// client-side p50/p90/p99 reply latency plus throughput per phase under
// the latency keys scripts/compare_bench.py gates with
// --latency-rel-tol (ignored by default — absolute latency is
// machine-dependent; the overhead *ratios* are named to match the same
// ignore patterns, so they ride in the artifact without gating noise).
//
// Usage: bench_service_load [--threads=N] [--clients=N] [--window=N]
//                           [--requests=N] [--trace=out.trace.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "audit/exec_audit.h"
#include "exec/frozen_tree.h"
#include "exec/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/telemetry.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

#include "figure_common.h"

using namespace spatialjoin;
using namespace spatialjoin::server;

namespace {

struct FrozenPair {
  exec::FrozenTree r;
  exec::FrozenTree s;
};

FrozenPair MakeFrozenPair(uint64_t seed_r, uint64_t seed_s, int64_t tuples) {
  DiskManager disk(4000);
  BufferPool pool(&disk, 2048);
  Rectangle world(0, 0, 600, 600);
  Schema schema({{"id", ValueType::kInt64}, {"box", ValueType::kRectangle}});
  Relation r("r", schema, &pool);
  Relation s("s", schema, &pool);
  RTree r_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RTree s_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen_r(world, seed_r);
  RectGenerator gen_s(world, seed_s);
  for (int64_t i = 0; i < tuples; ++i) {
    Rectangle box_r = gen_r.NextRect(2, 30);
    Rectangle box_s = gen_s.NextRect(2, 30);
    r_rtree.Insert(box_r, r.Insert(Tuple({Value(i), Value(box_r)})));
    s_rtree.Insert(box_s, s.Insert(Tuple({Value(i), Value(box_s)})));
  }
  RTreeGenTree r_adapter(&r_rtree, &r, 1);
  RTreeGenTree s_adapter(&s_rtree, &s, 1);
  return {exec::FrozenTree::Materialize(r_adapter),
          exec::FrozenTree::Materialize(s_adapter)};
}

// One client's closed loop: prime `window` pipelined requests, then for
// every reply retire-and-replace until `quota` requests have been sent,
// and drain. The window — not a rate — fixes this connection's offered
// concurrency.
struct ClientOutcome {
  int64_t ok = 0;
  int64_t rejected = 0;
  int64_t other = 0;           // anything but RESULT / RESOURCE_EXHAUSTED
  std::vector<int64_t> ok_latency_ns;
  bool transport_ok = true;
};

struct Outstanding {
  uint64_t id;
  int64_t send_ns;
};

void RunClient(const std::string& socket_path, int window, int quota,
               int client_index, ClientOutcome* out) {
  Result<std::unique_ptr<ServiceClient>> client =
      ServiceClient::Connect(socket_path);
  if (!client.ok()) {
    out->transport_ok = false;
    return;
  }
  out->ok_latency_ns.reserve(static_cast<size_t>(quota));

  SelectRequest select_request;
  select_request.dataset_id = 0;
  select_request.strategy = SelectStrategy::kTree;
  select_request.op_code = static_cast<uint8_t>(WireOp::kOverlaps);
  select_request.selector = Rectangle(100, 100, 400, 400);
  JoinRequest join_request;
  join_request.dataset_id = 0;
  join_request.strategy = JoinStrategy::kTreeJoin;
  join_request.op_code = static_cast<uint8_t>(WireOp::kOverlaps);

  std::deque<Outstanding> pending;
  int sent = 0;
  auto send_one = [&]() -> bool {
    const bool join = (sent + client_index) % 2 == 0;
    const int64_t now = MonotonicNowNs();
    Result<uint64_t> id = join ? client.value()->SendJoin(join_request)
                               : client.value()->SendSelect(select_request);
    if (!id.ok()) {
      out->transport_ok = false;
      return false;
    }
    pending.push_back({id.value(), now});
    ++sent;
    return true;
  };

  for (int i = 0; i < window && sent < quota; ++i) {
    if (!send_one()) return;
  }
  while (!pending.empty()) {
    Outstanding front = pending.front();
    pending.pop_front();
    Result<Reply> reply = client.value()->WaitReply(front.id);
    if (!reply.ok()) {
      out->transport_ok = false;
      return;
    }
    if (reply.value().type == MessageType::kResult) {
      ++out->ok;
      out->ok_latency_ns.push_back(MonotonicNowNs() - front.send_ns);
    } else if (reply.value().error_code == StatusCode::kResourceExhausted) {
      ++out->rejected;
    } else {
      ++out->other;
    }
    if (sent < quota && !send_one()) return;
  }
}

int64_t Percentile(std::vector<int64_t>* sorted_in_place, double q) {
  if (sorted_in_place->empty()) return 0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

// Aggregated outcome of one closed-loop phase across all clients.
struct PhaseResult {
  int64_t ok = 0;
  int64_t rejected = 0;
  int64_t other = 0;
  bool transport_ok = true;
  double wall_ns = 0;
  int64_t p50 = 0, p90 = 0, p99 = 0, worst = 0;
  double throughput_qps = 0;
};

PhaseResult RunLoadPhase(const std::string& socket_path, int clients,
                         int window, int quota) {
  std::vector<ClientOutcome> outcomes(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  const int64_t start_ns = MonotonicNowNs();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(RunClient, socket_path, window, quota, c,
                         &outcomes[static_cast<size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();

  PhaseResult result;
  result.wall_ns = static_cast<double>(MonotonicNowNs() - start_ns);
  std::vector<int64_t> latencies;
  for (ClientOutcome& outcome : outcomes) {
    result.ok += outcome.ok;
    result.rejected += outcome.rejected;
    result.other += outcome.other;
    result.transport_ok = result.transport_ok && outcome.transport_ok;
    latencies.insert(latencies.end(), outcome.ok_latency_ns.begin(),
                     outcome.ok_latency_ns.end());
  }
  result.p50 = Percentile(&latencies, 0.50);
  result.p90 = Percentile(&latencies, 0.90);
  result.p99 = Percentile(&latencies, 0.99);
  result.worst = latencies.empty() ? 0 : latencies.back();
  result.throughput_qps =
      result.wall_ns > 0
          ? static_cast<double>(result.ok) * 1e9 / result.wall_ns
          : 0.0;
  return result;
}

// Pulls queries.ok out of a STATS reply without a JSON parser: the
// serializer's formatting is stable ("queries" object, "ok" first key).
int64_t ExtractStatsOkCount(const std::string& json) {
  const size_t queries = json.find("\"queries\"");
  if (queries == std::string::npos) return -1;
  const size_t key = json.find("\"ok\": ", queries);
  if (key == std::string::npos) return -1;
  return std::atoll(json.c_str() + key + 6);
}

void WritePhaseLatency(JsonWriter* w, const PhaseResult& phase) {
  w->BeginObject();
  w->KV("p50", phase.p50);
  w->KV("p90", phase.p90);
  w->KV("p99", phase.p99);
  w->KV("max", phase.worst);
  w->EndObject();
}

int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atoi(argv[i] + len + 1);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = args.threads > 0 ? args.threads : std::min(8, std::max(2, hw));
  const int clients = IntFlag(argc, argv, "--clients", 16);
  const int window = IntFlag(argc, argv, "--window", 64);
  const int quota = IntFlag(argc, argv, "--requests", 768);  // per client
  const int offered_inflight = clients * window;
  constexpr int kMaxInflight = 256;

  std::cout << "E-SVC — query service closed-loop load (workers=" << workers
            << " clients=" << clients << " window=" << window
            << " offered inflight=" << offered_inflight
            << " admission bound=" << kMaxInflight << ")\n";

  MetricsRegistry::Global().ResetAll();
  ServiceTelemetry::Global().Reset();
  // Under closed-loop saturation every query queues behind the admission
  // bound, so the default 10ms slow-query event threshold would flood
  // the event log (and stderr) with the steady state. The slow rings
  // still populate; only the event emission is effectively disabled.
  ServiceTelemetry::Global().SetSlowEventThresholdNs(
      int64_t{60} * 1'000'000'000);

  exec::ThreadPool pool(workers);
  Server::Options options;
  options.max_inflight = kMaxInflight;
  Server service(&pool, options);
  {
    FrozenPair small = MakeFrozenPair(41, 42, 400);
    FrozenPair heavy = MakeFrozenPair(51, 52, 1200);
    service.RegisterDataset(std::move(small.r), std::move(small.s));
    service.RegisterDataset(std::move(heavy.r), std::move(heavy.s));
  }
  SJ_CHECK_OK(service.Start());

  std::atomic<int64_t> stats_polls{0};
  std::atomic<bool> stats_poll_ok{true};
  // Runs one measured load phase with a concurrent STATS client polling
  // every 5ms for its whole duration; poll successes/failures accumulate
  // across phases.
  auto run_polled_phase = [&]() -> PhaseResult {
    std::atomic<bool> stop_poller{false};
    std::thread poller([&service, &stop_poller, &stats_polls,
                        &stats_poll_ok] {
      Result<std::unique_ptr<ServiceClient>> poll_client =
          ServiceClient::Connect(service.socket_path());
      if (!poll_client.ok()) {
        stats_poll_ok.store(false);
        return;
      }
      while (!stop_poller.load(std::memory_order_relaxed)) {
        Result<std::string> stats = poll_client.value()->Stats();
        if (!stats.ok() ||
            stats.value().find("\"stats_version\": 1") == std::string::npos) {
          stats_poll_ok.store(false);
          return;
        }
        stats_polls.fetch_add(1, std::memory_order_relaxed);
        // 40 Hz: 40x sj_top's default cadence — aggressive enough to keep
        // STATS snapshots overlapping the load continuously, without the
        // poll client itself displacing query work on a small machine.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
    PhaseResult phase = RunLoadPhase(service.socket_path(), clients, window,
                                     quota);
    stop_poller.store(true);
    poller.join();
    return phase;
  };
  auto print_phase = [](const char* label, const PhaseResult& phase) {
    std::printf("%s: %lld ok, %lld rejected, %lld other "
                "(%.0f qps; p50=%lld p99=%lld ns)\n",
                label, static_cast<long long>(phase.ok),
                static_cast<long long>(phase.rejected),
                static_cast<long long>(phase.other), phase.throughput_qps,
                static_cast<long long>(phase.p50),
                static_cast<long long>(phase.p99));
  };

  // Warmup (unmeasured, still attributed): caches, allocator, scheduler.
  const int warmup_quota = std::max(window, quota / 4);
  PhaseResult warmup = RunLoadPhase(service.socket_path(), clients, window,
                                    warmup_quota);
  // Interleaved A/B/A/B so machine-state drift hits both sides equally.
  PhaseResult quiet1 = RunLoadPhase(service.socket_path(), clients, window,
                                    quota);
  print_phase("quiet1", quiet1);
  PhaseResult polled1 = run_polled_phase();
  print_phase("polled1", polled1);
  PhaseResult quiet2 = RunLoadPhase(service.socket_path(), clients, window,
                                    quota);
  print_phase("quiet2", quiet2);
  PhaseResult polled2 = run_polled_phase();
  print_phase("polled2", polled2);
  std::printf("STATS polls across polled phases: %lld\n",
              static_cast<long long>(stats_polls.load()));

  const int64_t ok =
      warmup.ok + quiet1.ok + quiet2.ok + polled1.ok + polled2.ok;
  const int64_t rejected = warmup.rejected + quiet1.rejected +
                           quiet2.rejected + polled1.rejected +
                           polled2.rejected;
  const int64_t other = warmup.other + quiet1.other + quiet2.other +
                        polled1.other + polled2.other;
  const bool transport_ok = warmup.transport_ok && quiet1.transport_ok &&
                            quiet2.transport_ok && polled1.transport_ok &&
                            polled2.transport_ok;
  const int64_t total =
      int64_t{clients} * (int64_t{quota} * 4 + warmup_quota);
  const bool all_accounted = transport_ok && (ok + rejected + other == total);

  // Telemetry overhead bound, best-of-two vs best-of-two. The slack has
  // three parts: 5% relative (the budget under test), twice the larger
  // same-side phase-to-phase spread (the machine's own noise — under
  // closed-loop saturation the p99 tail routinely swings tens of percent
  // between *identical* phases, so the run calibrates its own noise
  // floor; doubling covers a two-sample spread underestimating the true
  // variance, while a real, consistent regression elevates both polled
  // samples without widening either spread and is still caught), and a
  // small absolute floor (2ms / 50 qps) so tiny scaled runs cannot flip
  // the boolean on one scheduling quantum.
  const PhaseResult& quiet =
      quiet1.p99 <= quiet2.p99 ? quiet1 : quiet2;  // best (lowest) p99
  const PhaseResult& polled = polled1.p99 <= polled2.p99 ? polled1 : polled2;
  const int64_t p99_noise = std::max(std::abs(quiet1.p99 - quiet2.p99),
                                     std::abs(polled1.p99 - polled2.p99));
  const double qps_noise =
      std::max(std::abs(quiet1.throughput_qps - quiet2.throughput_qps),
               std::abs(polled1.throughput_qps - polled2.throughput_qps));
  const double best_quiet_qps =
      std::max(quiet1.throughput_qps, quiet2.throughput_qps);
  const double best_polled_qps =
      std::max(polled1.throughput_qps, polled2.throughput_qps);
  const bool overhead_within_bound =
      polled.p99 <=
          quiet.p99 + quiet.p99 / 20 + 2 * p99_noise + 2'000'000 &&
      best_polled_qps >= 0.95 * best_quiet_qps - 2 * qps_noise - 50.0;
  const double p99_ratio =
      quiet.p99 > 0 ? static_cast<double>(polled.p99) /
                          static_cast<double>(quiet.p99)
                    : 0.0;
  const double throughput_ratio =
      best_quiet_qps > 0 ? best_polled_qps / best_quiet_qps : 0.0;

  // Attribution exactness over the wire: the server's cumulative OK
  // count must equal what the clients counted, across all five phases.
  int64_t stats_ok_count = -1;
  {
    Result<std::unique_ptr<ServiceClient>> final_client =
        ServiceClient::Connect(service.socket_path());
    SJ_CHECK(final_client.ok());
    Result<std::string> stats = final_client.value()->Stats();
    SJ_CHECK(stats.ok());
    stats_ok_count = ExtractStatsOkCount(stats.value());
  }
  const bool stats_attribution_exact = stats_ok_count == ok;

  QueryScheduler::Stats sched = service.scheduler_stats();
  const bool bound_respected = sched.peak_inflight <= kMaxInflight;
  const bool rejections_observed = rejected > 0 && sched.rejected >= rejected;
  // A scaled-down run (CI under TSan) may legitimately never exceed the
  // admission bound; the rejection invariant only gates the exit code
  // when the offered load makes rejections certain. The artifact still
  // records it, and the regression gate compares the full-scale run
  // (whose seeded baseline has both booleans true).
  const bool rejections_expected = offered_inflight > kMaxInflight;

  std::printf("telemetry: p99 ratio %.3f, throughput ratio %.3f (%s); "
              "STATS ok=%lld vs clients ok=%lld (%s)\n",
              p99_ratio, throughput_ratio,
              overhead_within_bound ? "within bound" : "OVER BOUND",
              static_cast<long long>(stats_ok_count),
              static_cast<long long>(ok),
              stats_attribution_exact ? "exact" : "MISMATCH");
  std::printf("scheduler: admitted=%lld rejected=%lld peak_inflight=%lld "
              "(bound %d %s)\n",
              static_cast<long long>(sched.admitted),
              static_cast<long long>(sched.rejected),
              static_cast<long long>(sched.peak_inflight), kMaxInflight,
              bound_respected ? "respected" : "EXCEEDED");

  // --- Deadline and cancel probes ----------------------------------------
  // The heavyweight all-match join runs orders of magnitude past 2ms, so
  // both probes land deterministically mid-flight.
  bool deadline_probe_ok = false;
  bool cancel_probe_ok = false;
  {
    Result<std::unique_ptr<ServiceClient>> probe =
        ServiceClient::Connect(service.socket_path());
    SJ_CHECK(probe.ok());
    JoinRequest heavy;
    heavy.dataset_id = 1;
    heavy.strategy = JoinStrategy::kTreeJoin;
    heavy.op_code = static_cast<uint8_t>(WireOp::kWithinDistance);
    heavy.op_param = 1200.0;  // every pair within distance: maximal work
    heavy.deadline_ns = 2'000'000;
    Result<Reply> reply = probe.value()->Join(heavy);
    deadline_probe_ok = reply.ok() &&
                        reply.value().type == MessageType::kError &&
                        reply.value().error_code ==
                            StatusCode::kDeadlineExceeded;

    heavy.deadline_ns = 0;
    Result<uint64_t> id = probe.value()->SendJoin(heavy);
    SJ_CHECK(id.ok());
    SJ_CHECK_OK(probe.value()->Cancel(id.value()));
    reply = probe.value()->WaitReply(id.value());
    cancel_probe_ok = reply.ok() &&
                      reply.value().type == MessageType::kError &&
                      reply.value().error_code == StatusCode::kCancelled;
  }
  std::printf("deadline probe: %s, cancel probe: %s\n",
              deadline_probe_ok ? "DEADLINE_EXCEEDED" : "UNEXPECTED REPLY",
              cancel_probe_ok ? "CANCELLED" : "UNEXPECTED REPLY");

  service.Stop();
  audit::AuditReport pool_audit = audit::AuditThreadPool(pool);

  const bool sustained_kilo_inflight = offered_inflight >= 1000;
  // Like the rejection invariant above, the overhead bound only gates
  // the exit code at full scale: a scaled-down run's phases last a few
  // hundred ms (comparable to one scheduling quantum on an oversubscribed
  // box, and CI runs that size under TSan's 5-20x timing distortion), so
  // its p99 cannot resolve a 5% budget. The artifact still records the
  // boolean either way; the regression gate compares the full-scale run.
  const bool overhead_gates_exit = sustained_kilo_inflight;
  const bool all_ok = all_accounted && other == 0 && bound_respected &&
                      (rejections_observed || !rejections_expected) &&
                      deadline_probe_ok && cancel_probe_ok && ok > 0 &&
                      stats_poll_ok.load() && stats_polls.load() > 0 &&
                      stats_attribution_exact &&
                      (overhead_within_bound || !overhead_gates_exit) &&
                      pool_audit.ok();

  std::ostringstream load_json;
  JsonWriter w(load_json);
  w.BeginObject();
  w.KV("workers_flagged", int64_t{args.threads});
  w.KV("clients", int64_t{clients});
  w.KV("window", int64_t{window});
  w.KV("offered_inflight", int64_t{offered_inflight});
  w.KV("admission_bound", int64_t{kMaxInflight});
  w.KV("requests_total", total);
  w.Key("invariants");
  w.BeginObject();
  w.KV("all_replies_accounted", all_accounted);
  w.KV("no_unexpected_errors", other == 0);
  w.KV("admission_bound_respected", bound_respected);
  w.KV("rejections_observed", rejections_observed);
  w.KV("sustained_kilo_inflight", sustained_kilo_inflight);
  w.KV("deadline_probe_deadline_exceeded", deadline_probe_ok);
  w.KV("cancel_probe_cancelled", cancel_probe_ok);
  w.KV("some_queries_succeeded", ok > 0);
  w.KV("stats_poll_ok", stats_poll_ok.load() && stats_polls.load() > 0);
  w.KV("stats_attribution_exact", stats_attribution_exact);
  w.KV("telemetry_overhead_within_bound", overhead_within_bound);
  w.KV("pool_audit_ok", pool_audit.ok());
  w.EndObject();
  // Timing-dependent admitted/rejected splits per phase: informational,
  // ignored by the regression gate ("*.load.*" / "*.polled.*").
  w.Key("load");
  w.BeginObject();
  w.KV("ok", quiet1.ok + quiet2.ok);
  w.KV("rejected", quiet1.rejected + quiet2.rejected);
  w.KV("other", quiet1.other + quiet2.other);
  w.KV("scheduler_admitted", sched.admitted);
  w.KV("scheduler_rejected", sched.rejected);
  w.KV("scheduler_peak_inflight", sched.peak_inflight);
  w.EndObject();
  w.Key("polled");
  w.BeginObject();
  w.KV("ok", polled1.ok + polled2.ok);
  w.KV("rejected", polled1.rejected + polled2.rejected);
  w.KV("other", polled1.other + polled2.other);
  w.KV("stats_polls", stats_polls.load());
  w.KV("stats_ok_count", stats_ok_count);
  w.EndObject();
  // Latency keys (best-of-two phase each side): ignored by default,
  // gated by --latency-rel-tol.
  w.Key("latency_ns");
  WritePhaseLatency(&w, quiet);
  w.KV("throughput_qps", best_quiet_qps);
  w.Key("polled_latency_ns");
  WritePhaseLatency(&w, polled);
  w.KV("polled_throughput_qps", best_polled_qps);
  // Overhead ratios: named so "*latency_ns.*" / "*throughput_qps*"
  // ignore them by default — visible in the artifact, never gating.
  w.Key("telemetry_overhead");
  w.BeginObject();
  w.Key("latency_ns");
  w.BeginObject();
  w.KV("p99_ratio", p99_ratio);
  w.EndObject();
  w.KV("throughput_qps_ratio", throughput_ratio);
  w.EndObject();
  w.KV("wall_ns", warmup.wall_ns + quiet1.wall_ns + quiet2.wall_ns +
                      polled1.wall_ns + polled2.wall_ns);
  w.EndObject();

  bench::WriteMetricsArtifact("bench_service_load",
                              {{"service_load", load_json.str()},
                               {"audit", pool_audit.ToJson()}});
  bench::MaybeWriteTrace(args);
  bench::MaybeWriteFlightDump(args);
  std::cout << (all_ok ? "service load invariants hold\n"
                       : "SERVICE LOAD INVARIANT FAILED — see above\n");
  return all_ok ? 0 : 1;
}
