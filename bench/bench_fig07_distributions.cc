// Reproduces paper Fig. 7: the match probabilities ρ(o1, o2) for o1 the
// leftmost leaf of a k-ary tree of height n, under the UNIFORM, NO-LOC,
// and HI-LOC distributions. For each height of o2 and each possible
// lowest-common-ancestor height we print ρ (HI-LOC depends on the LCA;
// the other two do not).
#include <cstdio>
#include <iostream>

#include "costmodel/distributions.h"
#include "costmodel/parameters.h"

using spatialjoin::MatchDistribution;
using spatialjoin::MatchProbability;
using spatialjoin::ModelParameters;
using spatialjoin::PaperParameters;
using spatialjoin::PiTable;

int main() {
  ModelParameters params = PaperParameters();
  params.p = 0.1;
  const int n = params.n;
  std::cout << "Figure 7 — match probabilities rho(o1, o2), o1 = leftmost "
               "leaf (height "
            << n << "), p = " << params.p << "\n\n";

  for (MatchDistribution dist :
       {MatchDistribution::kUniform, MatchDistribution::kNoLoc,
        MatchDistribution::kHiLoc}) {
    std::cout << "(" << MatchDistributionName(dist) << ")\n";
    std::cout << "  o2 height | lca height -> rho\n";
    for (int j = 0; j <= n; ++j) {
      std::printf("  %9d |", j);
      int max_lca = std::min(n, j);
      for (int lca = 0; lca <= max_lca; ++lca) {
        std::printf(" %d:%.2e", lca,
                    MatchProbability(dist, params.p, n, j, lca));
      }
      std::printf("\n");
    }
    // Level averages π_{n,j} — the quantities the cost model consumes.
    PiTable pi(dist, n, params.k, params.p);
    std::cout << "  level averages pi(n, j):";
    for (int j = 0; j <= n; ++j) std::printf(" %.2e", pi.pi(n, j));
    std::cout << "\n\n";
  }
  return 0;
}
