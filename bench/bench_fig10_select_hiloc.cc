// Reproduces paper Fig. 10: expected cost of a spatial selection under the
// HI-LOC matching distribution, strategies I / IIa / IIb / III.
#include "figure_common.h"

int main() {
  spatialjoin::bench::RunSelectFigure(
      "Figure 10 — SELECT, HI-LOC distribution",
      spatialjoin::MatchDistribution::kHiLoc,
      "bench_fig10_select_hiloc");
  return 0;
}
