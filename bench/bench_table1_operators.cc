// Reproduces paper Table 1: the θ-operators and their conservative
// Θ-counterparts. For each operator the bench prints the pair, then
// empirically verifies the defining implication θ(o1,o2) ⇒ Θ(o1',o2')
// over random geometry, reporting match counts and the Θ false-positive
// rate (the price of index-level conservatism).
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/theta_ops.h"
#include "workload/rect_generator.h"

using namespace spatialjoin;

namespace {

struct Row {
  std::string theta;
  std::string theta_upper;
  std::unique_ptr<ThetaOperator> op;
};

}  // namespace

int main() {
  std::vector<Row> rows;
  rows.push_back({"o1 within distance d from o2 (centerpoints)",
                  "o1' within distance d from o2' (closest points)",
                  std::make_unique<WithinDistanceOp>(12.0)});
  rows.push_back({"o1 overlaps o2", "o1' overlaps o2'",
                  std::make_unique<OverlapsOp>()});
  rows.push_back({"o1 includes o2", "o1' overlaps o2' (Fig. 4)",
                  std::make_unique<IncludesOp>()});
  rows.push_back({"o1 contained in o2", "o1' overlaps o2'",
                  std::make_unique<ContainedInOp>()});
  rows.push_back({"o1 to the Northwest of o2 (centerpoints)",
                  "o1' overlaps NW quadrant of o2' (Fig. 5)",
                  std::make_unique<NorthwestOfOp>()});
  rows.push_back({"o1 reachable from o2 in x minutes",
                  "o1' overlaps the x-minute buffer of o2'",
                  std::make_unique<ReachableWithinOp>(5.0, 2.0)});

  std::cout << "Table 1 — theta and corresponding Theta operators\n\n";
  RectGenerator gen(Rectangle(0, 0, 100, 100), 1234);
  Rng rng(4321);
  const int trials = 20000;
  for (const Row& row : rows) {
    int theta_true = 0;
    int upper_true = 0;
    int violations = 0;
    for (int t = 0; t < trials; ++t) {
      auto random_value = [&]() -> Value {
        switch (rng.NextUint64(3)) {
          case 0:
            return Value(gen.NextPoint());
          case 1:
            return Value(gen.NextRect(0.5, 20));
          default:
            return Value(gen.NextPolygon(0.5, 6, 8));
        }
      };
      Value a = random_value();
      Value b = random_value();
      bool theta = row.op->Theta(a, b);
      bool upper = row.op->ThetaUpper(a.Mbr(), b.Mbr());
      theta_true += theta;
      upper_true += upper;
      violations += theta && !upper;
    }
    std::printf("theta:  %s\nTheta:  %s\n", row.theta.c_str(),
                row.theta_upper.c_str());
    std::printf(
        "        theta-matches %5d / %d, Theta-matches %5d, "
        "implication violations %d, Theta false-positive rate %.3f\n\n",
        theta_true, trials, upper_true, violations,
        upper_true == 0
            ? 0.0
            : static_cast<double>(upper_true - theta_true) / upper_true);
    if (violations != 0) {
      std::cerr << "TABLE 1 PROPERTY VIOLATED for " << row.op->name()
                << "\n";
      return 1;
    }
  }
  std::cout << "All operators satisfy theta => Theta.\n";
  return 0;
}
