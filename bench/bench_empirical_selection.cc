// Experiment E3 — the measured counterpart of Figs. 8–10: spatial
// *selections* executed for real over the simulated disk, comparing
// strategy I (exhaustive scan), strategy II on clustered and unclustered
// storage (Algorithm SELECT over the attached hierarchy), and strategy
// III (join-index lookup for stored selectors). Costs in the paper's
// units: θ/Θ tests + 1000 per page read, cold pool per query.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "common/check.h"
#include "core/join_index.h"
#include "core/nested_loop.h"
#include "core/select.h"
#include "core/theta_ops.h"
#include "exec/frozen_tree.h"
#include "exec/parallel_select.h"
#include "exec/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"
#include "workload/rect_generator.h"

using namespace spatialjoin;

namespace {

constexpr double kCio = 1000.0;

struct Totals {
  int64_t tests = 0;
  int64_t reads = 0;
  int64_t matches = 0;

  double cost() const {
    return static_cast<double>(tests) + kCio * static_cast<double>(reads);
  }
};

void Report(const char* name, const Totals& t, int queries) {
  std::printf("%-26s matches=%6lld  tests=%8lld  reads=%6lld  "
              "cost/query=%.3e\n",
              name, static_cast<long long>(t.matches),
              static_cast<long long>(t.tests),
              static_cast<long long>(t.reads), t.cost() / queries);
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      if (threads < 1) threads = 1;
    }
  }
  const Rectangle world(0, 0, 1024, 1024);
  HierarchyOptions options;
  options.height = 5;
  options.fanout = 4;  // 1365 application objects

  // Two physical copies of the same logical hierarchy.
  DiskManager disk_cl(2000);
  BufferPool pool_cl(&disk_cl, 64);
  GeneratedHierarchy clustered = GenerateHierarchy(
      world, options, &pool_cl, RelationLayout::kClustered,
      /*pad_tuples_to=*/300);
  DiskManager disk_uc(2000);
  BufferPool pool_uc(&disk_uc, 64);
  GeneratedHierarchy unclustered = GenerateHierarchy(
      world, options, &pool_uc, RelationLayout::kHeap,
      /*pad_tuples_to=*/300, /*shuffle_storage_order=*/true);

  // Strategy III support: a self join-index on `overlaps`, so stored
  // selectors can be answered by lookup.
  OverlapsOp op;
  DiskManager disk_ji(2000);
  BufferPool pool_ji(&disk_ji, 4096);
  JoinIndex index(&pool_ji, 100);
  int64_t precompute = index.Build(*clustered.relation,
                                   clustered.spatial_column,
                                   *clustered.relation,
                                   clustered.spatial_column, op);

  std::cout << "E3 — measured spatial selections (operator: overlaps; "
            << clustered.relation->num_tuples()
            << " objects; 40 stored selectors; cold pool per query; "
               "join-index precompute: "
            << precompute << " theta tests)\n\n";

  // Parallel SELECT operates on a one-time frozen snapshot of the
  // clustered hierarchy (its page reads are paid here, once, not per
  // query) and shards the frontier over the exec pool.
  SJ_CHECK_OK(pool_cl.Clear());
  disk_cl.ResetStats();
  exec::FrozenTree frozen = exec::FrozenTree::Materialize(*clustered.tree);
  int64_t snapshot_reads = disk_cl.stats().page_reads;
  exec::ThreadPool workers(threads);

  const int queries = 40;
  Totals exhaustive, tree_cl, tree_uc, ji_lookup, tree_par;
  tree_par.reads = snapshot_reads;  // amortized over all queries
  Rng selector_rng(2024);
  for (int q = 0; q < queries; ++q) {
    TupleId selector_tid = static_cast<TupleId>(selector_rng.NextUint64(
        static_cast<uint64_t>(clustered.relation->num_tuples())));
    Value selector =
        clustered.relation->Read(selector_tid).value(
            clustered.spatial_column);

    SJ_CHECK_OK(pool_cl.Clear());
    disk_cl.ResetStats();
    JoinResult scan = NestedLoopSelect(selector, *clustered.relation,
                                       clustered.spatial_column, op);
    exhaustive.tests += scan.theta_tests;
    exhaustive.reads += disk_cl.stats().page_reads;
    exhaustive.matches += static_cast<int64_t>(scan.matches.size());

    SJ_CHECK_OK(pool_cl.Clear());
    disk_cl.ResetStats();
    SelectResult cl = SpatialSelect(selector, *clustered.tree, op);
    tree_cl.tests += cl.theta_tests + cl.theta_upper_tests;
    tree_cl.reads += disk_cl.stats().page_reads;
    tree_cl.matches += static_cast<int64_t>(cl.matching_tuples.size());

    SJ_CHECK_OK(pool_uc.Clear());
    disk_uc.ResetStats();
    SelectResult uc = SpatialSelect(selector, *unclustered.tree, op);
    tree_uc.tests += uc.theta_tests + uc.theta_upper_tests;
    tree_uc.reads += disk_uc.stats().page_reads;
    tree_uc.matches += static_cast<int64_t>(uc.matching_tuples.size());

    SelectResult par = exec::ParallelSelect(selector, frozen, op, &workers);
    tree_par.tests += par.theta_tests + par.theta_upper_tests;
    tree_par.matches += static_cast<int64_t>(par.matching_tuples.size());

    SJ_CHECK_OK(pool_ji.Clear());
    disk_ji.ResetStats();
    std::vector<TupleId> hits = index.SMatchesOf(selector_tid);
    for (TupleId tid : hits) {
      (void)clustered.relation->Read(tid);  // fetch matching tuples
    }
    ji_lookup.reads += disk_ji.stats().page_reads +
                       disk_cl.stats().page_reads;
    ji_lookup.matches += static_cast<int64_t>(hits.size());
  }

  Report("I: exhaustive scan", exhaustive, queries);
  Report("IIa: tree, unclustered", tree_uc, queries);
  Report("IIb: tree, clustered", tree_cl, queries);
  Report("III: join-index lookup", ji_lookup, queries);
  std::printf("II-par: frozen, W=%-2d       ", threads);
  std::printf("matches=%6lld  tests=%8lld  reads=%6lld  cost/query=%.3e  "
              "(reads = one-time snapshot; --threads=N)\n",
              static_cast<long long>(tree_par.matches),
              static_cast<long long>(tree_par.tests),
              static_cast<long long>(tree_par.reads),
              tree_par.cost() / queries);
  std::cout << "\nExpected shape (Figs. 8-10): exhaustive never "
               "competitive; clustered beats unclustered on reads at "
               "equal logical work; the join index answers with zero "
               "theta tests but amortizes the precompute column and "
               "N-test updates.\n";
  return 0;
}
