// Reproduces paper Fig. 9: expected cost of a spatial selection under the
// NO-LOC matching distribution, strategies I / IIa / IIb / III.
#include "figure_common.h"

int main() {
  spatialjoin::bench::RunSelectFigure(
      "Figure 9 — SELECT, NO-LOC distribution",
      spatialjoin::MatchDistribution::kNoLoc,
      "bench_fig09_select_noloc");
  return 0;
}
