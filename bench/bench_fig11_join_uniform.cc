// Reproduces paper Fig. 11: expected cost of a general spatial join under
// the UNIFORM matching distribution; the paper reports a join-index
// crossover near p ≈ 1e-9.
#include "figure_common.h"

int main() {
  spatialjoin::bench::RunJoinFigure(
      "Figure 11 — JOIN, UNIFORM distribution",
      spatialjoin::MatchDistribution::kUniform,
      "bench_fig11_join_uniform");
  return 0;
}
