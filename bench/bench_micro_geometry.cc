// A4 — microbenchmarks for the geometry and z-order substrates (the
// per-C_θ building blocks of every strategy), via google-benchmark.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/theta_ops.h"
#include "geometry/polygon.h"
#include "geometry/rectangle.h"
#include "workload/rect_generator.h"
#include "zorder/hilbert.h"
#include "zorder/zdecompose.h"
#include "zorder/zorder.h"

namespace spatialjoin {
namespace {

std::vector<Rectangle> MakeRects(int count, double min_ext, double max_ext) {
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 5);
  return gen.Rects(count, min_ext, max_ext);
}

void BM_RectangleOverlap(benchmark::State& state) {
  std::vector<Rectangle> rects = MakeRects(1024, 1, 50);
  size_t i = 0;
  for (auto _ : state) {
    const Rectangle& a = rects[i % rects.size()];
    const Rectangle& b = rects[(i * 7 + 3) % rects.size()];
    benchmark::DoNotOptimize(a.Overlaps(b));
    ++i;
  }
}
BENCHMARK(BM_RectangleOverlap);

void BM_RectangleMinDistance(benchmark::State& state) {
  std::vector<Rectangle> rects = MakeRects(1024, 1, 50);
  size_t i = 0;
  for (auto _ : state) {
    const Rectangle& a = rects[i % rects.size()];
    const Rectangle& b = rects[(i * 7 + 3) % rects.size()];
    benchmark::DoNotOptimize(a.MinDistance(b));
    ++i;
  }
}
BENCHMARK(BM_RectangleMinDistance);

void BM_PointInPolygon(benchmark::State& state) {
  int vertices = static_cast<int>(state.range(0));
  Polygon poly = Polygon::RegularNGon(Point(500, 500), 200, vertices);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 9);
  std::vector<Point> points = gen.Points(1024);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.ContainsPoint(points[i % points.size()]));
    ++i;
  }
}
BENCHMARK(BM_PointInPolygon)->Arg(8)->Arg(32)->Arg(128);

void BM_PolygonIntersects(benchmark::State& state) {
  int vertices = static_cast<int>(state.range(0));
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 13);
  std::vector<Polygon> polys;
  for (int i = 0; i < 128; ++i) {
    polys.push_back(gen.NextPolygon(10, 80, vertices));
  }
  size_t i = 0;
  for (auto _ : state) {
    const Polygon& a = polys[i % polys.size()];
    const Polygon& b = polys[(i * 5 + 1) % polys.size()];
    benchmark::DoNotOptimize(a.Intersects(b));
    ++i;
  }
}
BENCHMARK(BM_PolygonIntersects)->Arg(8)->Arg(32);

void BM_ThetaWithinDistance(benchmark::State& state) {
  WithinDistanceOp op(25.0);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 17);
  std::vector<Value> values;
  for (int i = 0; i < 256; ++i) values.emplace_back(gen.NextRect(1, 40));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Theta(values[i % values.size()],
                                      values[(i * 3 + 1) % values.size()]));
    ++i;
  }
}
BENCHMARK(BM_ThetaWithinDistance);

void BM_ZInterleave(benchmark::State& state) {
  uint32_t x = 12345;
  uint32_t y = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(InterleaveBits(x, y));
    x += 7;
    y += 13;
  }
}
BENCHMARK(BM_ZInterleave);

void BM_HilbertEncode(benchmark::State& state) {
  uint32_t x = 12345;
  uint32_t y = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(XYToHilbert(x & 0xFFFFFF, y & 0xFFFFFF,
                                         ZCell::kMaxLevel));
    x += 7;
    y += 13;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_ZDecomposeRect(benchmark::State& state) {
  ZGrid grid(Rectangle(0, 0, 1000, 1000));
  std::vector<Rectangle> rects = MakeRects(256, 5, 100);
  ZDecomposeOptions options;
  options.max_level = static_cast<int>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DecomposeRectangle(rects[i % rects.size()], grid, options));
    ++i;
  }
}
BENCHMARK(BM_ZDecomposeRect)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
}  // namespace spatialjoin

BENCHMARK_MAIN();
