// Reproduces paper Fig. 13: expected cost of a general spatial join under
// the HI-LOC matching distribution; the paper reports a near-tie between
// the strategies for any reasonable selectivity.
#include "figure_common.h"

int main() {
  spatialjoin::bench::RunJoinFigure(
      "Figure 13 — JOIN, HI-LOC distribution",
      spatialjoin::MatchDistribution::kHiLoc,
      "bench_fig13_join_hiloc", /*p_lo=*/1e-12, /*p_hi=*/0.3);
  return 0;
}
