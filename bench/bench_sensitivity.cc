// Sensitivity analysis — the paper's §5 future work ("more detailed cost
// formulas and more comparative studies are required"): how the strategy
// ranking shifts when the Table-3 parameters move. For each knob we sweep
// one parameter at a fixed NO-LOC selectivity and report the winning
// join strategy plus the II/III cost ratio.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "costmodel/join_cost.h"
#include "costmodel/parameters.h"
#include "costmodel/select_cost.h"
#include "figure_common.h"

using namespace spatialjoin;

namespace {

const char* Winner(const JoinCosts& costs) {
  double best = std::min(std::min(costs.d_i, costs.d_iia),
                         std::min(costs.d_iib, costs.d_iii));
  if (best == costs.d_iib) return "IIb";
  if (best == costs.d_iia) return "IIa";
  if (best == costs.d_iii) return "III";
  return "I";
}

void Row(const char* label, const ModelParameters& params,
         MatchDistribution dist) {
  JoinCosts join = ComputeJoinCosts(params, dist);
  SelectCosts select = ComputeSelectCosts(params, dist);
  std::printf("%-24s D_IIb=%.3e D_III=%.3e III/IIb=%6.2f  join-winner=%-4s"
              " C_IIb=%.3e\n",
              label, join.d_iib, join.d_iii, join.d_iii / join.d_iib,
              Winner(join), select.c_iib);
}

}  // namespace

int main() {
  MatchDistribution dist = MatchDistribution::kNoLoc;
  std::cout << "Sensitivity of the strategy ranking to the model "
               "parameters (NO-LOC, p = 1e-4 unless noted)\n\n";

  std::cout << "-- tree fan-out k (n adjusted to keep N ~ 10^6) --\n";
  for (int k : {4, 8, 10, 16, 32}) {
    ModelParameters params = PaperParameters();
    params.k = k;
    // Pick n so k^n stays near 1e6.
    params.n = static_cast<int>(std::round(
        std::log(1e6) / std::log(static_cast<double>(k))));
    params.h = params.n;
    params.p = 1e-4;
    char label[32];
    std::snprintf(label, sizeof(label), "k=%d n=%d", k, params.n);
    Row(label, params, dist);
  }

  std::cout << "\n-- main memory M (pages) --\n";
  for (int64_t m_pages : {100, 1000, 4000, 20000, 100000}) {
    ModelParameters params = PaperParameters();
    params.M = m_pages;
    params.p = 1e-4;
    char label[32];
    std::snprintf(label, sizeof(label), "M=%lld",
                  static_cast<long long>(m_pages));
    Row(label, params, dist);
  }

  std::cout << "\n-- join-index page capacity z --\n";
  for (int64_t z : {10, 50, 100, 500}) {
    ModelParameters params = PaperParameters();
    params.z = z;
    params.p = 1e-4;
    char label[32];
    std::snprintf(label, sizeof(label), "z=%lld",
                  static_cast<long long>(z));
    Row(label, params, dist);
  }

  std::cout << "\n-- I/O-to-compute cost ratio C_IO/C_theta --\n";
  for (double c_io : {10.0, 100.0, 1000.0, 10000.0}) {
    ModelParameters params = PaperParameters();
    params.c_io = c_io;
    params.p = 1e-4;
    char label[32];
    std::snprintf(label, sizeof(label), "C_IO=%g", c_io);
    Row(label, params, dist);
  }

  std::cout << "\nReading: the paper's conclusion is robust across the "
               "grid — the clustered tree holds the moderate-selectivity "
               "regime under every knob tried. Fan-out moves both "
               "strategies together; larger z helps the index (fewer "
               "index pages) but never enough; the C_IO ratio barely "
               "shifts the ranking. The M sweep exposes a model artifact "
               "worth knowing: with the pass count already 1, growing M "
               "only inflates D_III's per-pass fetch estimate "
               "q = 1-(1-W/N^2)^{m(M-10)} without helping anything, so "
               "the index looks worse — the formula overestimates "
               "re-fetches exactly as §4.4 warns for D_II.\n";
  return 0;
}
