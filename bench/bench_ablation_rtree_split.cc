// Ablation A2 — Guttman's linear vs quadratic node split: index quality
// (search I/O, node count, area overlap) against build cost, on uniform
// and clustered rectangle workloads.
#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

using namespace spatialjoin;

namespace {

enum class BuildMode { kLinear, kQuadratic, kRStar, kBulkStr };

const char* ModeName(BuildMode mode) {
  switch (mode) {
    case BuildMode::kLinear:
      return "linear";
    case BuildMode::kQuadratic:
      return "quadratic";
    case BuildMode::kRStar:
      return "r-star";
    case BuildMode::kBulkStr:
      return "bulk-STR";
  }
  return "?";
}

RTreeSplit SplitOf(BuildMode mode) {
  switch (mode) {
    case BuildMode::kLinear:
      return RTreeSplit::kLinear;
    case BuildMode::kRStar:
      return RTreeSplit::kRStar;
    default:
      return RTreeSplit::kQuadratic;
  }
}

void Run(const char* workload, bool clustered, BuildMode mode) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 4096);
  RTree tree(&pool, SplitOf(mode));
  Rectangle world(0, 0, 2000, 2000);
  RectGenerator gen(world, 99);

  const int n = 5000;
  std::vector<std::pair<Rectangle, TupleId>> entries;
  if (clustered) {
    std::vector<Point> centers = gen.ClusteredPoints(n, 12, 40.0);
    for (int i = 0; i < n; ++i) {
      const Point& c = centers[static_cast<size_t>(i)];
      double w = 2.0 + 8.0 * gen.NextPoint().x / 2000.0;
      double x0 = std::min(c.x, 2000.0 - w);
      double y0 = std::min(c.y, 2000.0 - w);
      entries.emplace_back(Rectangle(x0, y0, x0 + w, y0 + w), i);
    }
  } else {
    for (int i = 0; i < n; ++i) entries.emplace_back(gen.NextRect(2, 10), i);
  }
  if (mode == BuildMode::kBulkStr) {
    tree.BulkLoadStr(entries);
  } else {
    for (const auto& [mbr, tid] : entries) tree.Insert(mbr, tid);
  }
  tree.CheckInvariants();

  // Search cost: total page reads over a window workload, cold pool.
  RectGenerator query_gen(world, 7);
  int64_t reads = 0;
  int64_t results = 0;
  const int queries = 200;
  for (int q = 0; q < queries; ++q) {
    Rectangle window = query_gen.NextRect(20, 120);
    SJ_CHECK_OK(pool.Clear());
    disk.ResetStats();
    results += static_cast<int64_t>(tree.SearchTids(window).size());
    reads += disk.stats().page_reads;
  }
  std::printf("%-10s %-10s height=%d nodes=%5lld results=%7lld "
              "reads/query=%7.2f\n",
              workload, ModeName(mode), tree.height(),
              static_cast<long long>(tree.num_nodes()),
              static_cast<long long>(results),
              static_cast<double>(reads) / queries);
}

}  // namespace

int main() {
  std::cout << "A2 — R-tree build strategies (5000 rectangles, 200 window "
               "queries, cold pool per query)\n\n";
  for (BuildMode mode : {BuildMode::kLinear, BuildMode::kQuadratic,
                         BuildMode::kRStar, BuildMode::kBulkStr}) {
    Run("uniform", false, mode);
  }
  for (BuildMode mode : {BuildMode::kLinear, BuildMode::kQuadratic,
                         BuildMode::kRStar, BuildMode::kBulkStr}) {
    Run("clustered", true, mode);
  }
  std::cout << "\nReading: quadratic split trades more CPU per insert for "
               "tighter nodes and fewer page reads per search (Guttman's "
               "own finding). STR bulk packing minimizes node count (and "
               "build cost) by filling pages completely; its fully packed "
               "tiles overlap windows slightly more than quadratic's "
               "looser but tighter-fitting nodes, so it wins on space and "
               "load time, not necessarily per-query reads. All of it "
               "carries over to generalization-tree joins, which traverse "
               "the same nodes.\n";
  return 0;
}
