#ifndef SPATIALJOIN_BENCH_FIGURE_COMMON_H_
#define SPATIALJOIN_BENCH_FIGURE_COMMON_H_

// Shared sweep drivers for the figure-reproduction benches (Figs. 8–13).
// Each bench prints the paper's parameter block (Table 3), then one row
// per selectivity with the cost series the corresponding figure plots,
// and finally the winner per regime so the "who wins where" shape is
// machine-checkable from the output.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "costmodel/distributions.h"
#include "costmodel/join_cost.h"
#include "costmodel/parameters.h"
#include "costmodel/report.h"
#include "costmodel/select_cost.h"
#include "costmodel/update_cost.h"

namespace spatialjoin {
namespace bench {

inline void PrintHeader(const std::string& title,
                        const ModelParameters& params) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "Parameters (Table 3): " << params.ToString() << "\n"
            << "==========================================================\n";
}

/// Reproduces one SELECT figure (Fig. 8/9/10): C_I, C_IIa, C_IIb, C_III
/// against selectivity p on a log grid, plus the per-row winner.
inline void RunSelectFigure(const std::string& title, MatchDistribution dist,
                            double p_lo = 1e-4, double p_hi = 1.0,
                            int points = 17) {
  ModelParameters params = PaperParameters();
  PrintHeader(title, params);
  TableReport table({"p", "C_I", "C_IIa", "C_IIb", "C_III"});
  for (double p : LogSpace(p_lo, p_hi, points)) {
    params.p = p;
    SelectCosts costs = ComputeSelectCosts(params, dist);
    table.AddRow({p, costs.c_i, costs.c_iia, costs.c_iib, costs.c_iii});
  }
  table.Print(std::cout);
  std::cout << "winners:";
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::cout << " " << table.columns()[table.ArgMinOfRow(row)];
  }
  std::cout << "\n\n";
}

/// Reproduces one JOIN figure (Fig. 11/12/13): D_I, D_IIa, D_IIb, D_III.
inline void RunJoinFigure(const std::string& title, MatchDistribution dist,
                          double p_lo = 1e-12, double p_hi = 1e-2,
                          int points = 21) {
  ModelParameters params = PaperParameters();
  PrintHeader(title, params);
  TableReport table({"p", "D_I", "D_IIa", "D_IIb", "D_III"});
  for (double p : LogSpace(p_lo, p_hi, points)) {
    params.p = p;
    JoinCosts costs = ComputeJoinCosts(params, dist);
    table.AddRow({p, costs.d_i, costs.d_iia, costs.d_iib, costs.d_iii});
  }
  table.Print(std::cout);
  std::cout << "winners:";
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::cout << " " << table.columns()[table.ArgMinOfRow(row)];
  }
  // Locate the II/III crossover (first p where the tree beats the index).
  double crossover = -1.0;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const auto& r = table.row(row);
    if (r[4] > r[2]) {  // D_III > D_IIa
      crossover = r[0];
      break;
    }
  }
  std::cout << "\nD_III/D_IIa crossover near p = ";
  if (crossover < 0) {
    std::cout << "(none in sweep)";
  } else {
    std::printf("%.2e", crossover);
  }
  std::cout << "\n\n";
}

}  // namespace bench
}  // namespace spatialjoin

#endif  // SPATIALJOIN_BENCH_FIGURE_COMMON_H_
