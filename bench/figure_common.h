#ifndef SPATIALJOIN_BENCH_FIGURE_COMMON_H_
#define SPATIALJOIN_BENCH_FIGURE_COMMON_H_

// Shared sweep drivers for the figure-reproduction benches (Figs. 8–13).
// Each bench prints the paper's parameter block (Table 3), then one row
// per selectivity with the cost series the corresponding figure plots,
// and finally the winner per regime so the "who wins where" shape is
// machine-checkable from the output.
//
// When a bench passes its name as `artifact`, the driver additionally
// runs a small seeded *empirical* probe of the matching algorithm (real
// R-trees over the simulated disk) with full observability enabled, and
// writes `<artifact>.metrics.json` next to the binary: per-level
// worklist/QualPairs sizes, Θ/θ-test counts, buffer-pool hit rate,
// wall-clock timings, the explain-analyze predicted-vs-measured report,
// and the global metrics registry.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "audit/bufferpool_audit.h"
#include "audit/rtree_audit.h"
#include "core/planner.h"
#include "core/spatial_join.h"
#include "costmodel/distributions.h"
#include "costmodel/join_cost.h"
#include "costmodel/parameters.h"
#include "costmodel/report.h"
#include "costmodel/select_cost.h"
#include "costmodel/update_cost.h"
#include "obs/explain.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/process_info.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace bench {

/// Wall-clock "now" for bench timing — the one shared helper (steady
/// clock via obs/timer.h) replacing the per-bench ad-hoc chrono blocks.
inline double NowNs() { return static_cast<double>(MonotonicNowNs()); }

/// Best-of-k wall time of `fn` in nanoseconds — the standard bench
/// timing discipline (best-of, not mean-of, to shed scheduler noise).
template <typename Fn>
inline double TimeBestOf(int reps, const Fn& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    double start = NowNs();
    fn();
    double elapsed = NowNs() - start;
    if (i == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Flags shared by the empirical benches: `--threads=N` pins the exec
/// pool width, `--trace=PATH` (or `--trace PATH`) enables span tracing
/// and writes a Chrome-trace JSON timeline on exit via MaybeWriteTrace(),
/// and `--flight-dump=PATH` arms the flight recorder (signal handlers +
/// watchdog) with PATH as the dump file, writing an "explicit" dump on
/// clean exit via MaybeWriteFlightDump() so every run leaves a black box.
struct BenchArgs {
  int threads = 0;              // 0 = bench default
  std::string trace_path;
  std::string flight_dump_path;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      args.threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      args.trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      args.trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--flight-dump=", 14) == 0) {
      args.flight_dump_path = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--flight-dump") == 0 && i + 1 < argc) {
      args.flight_dump_path = argv[++i];
    }
  }
  if (!args.trace_path.empty()) {
    Tracing::SetThreadName("main");
    Tracing::Enable(true);
  }
  if (!args.flight_dump_path.empty()) {
    FlightRecorderOptions options;
    options.dump_path = args.flight_dump_path;
    options.start_watchdog = true;
    FlightRecorder::Install(options);
  }
  return args;
}

/// Writes the timeline artifact if `--trace` was given.
inline void MaybeWriteTrace(const BenchArgs& args) {
  if (args.trace_path.empty()) return;
  WriteTraceArtifact(args.trace_path);
}

/// Writes the clean-exit flight dump if `--flight-dump` was given, and
/// stops the watchdog so bench teardown stays deterministic.
inline void MaybeWriteFlightDump(const BenchArgs& args) {
  if (args.flight_dump_path.empty()) return;
  FlightRecorder::Dump("explicit", "bench exit");
  FlightRecorder::StopWatchdog();
}

inline void PrintHeader(const std::string& title,
                        const ModelParameters& params) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "Parameters (Table 3): " << params.ToString() << "\n"
            << "==========================================================\n";
}

/// Seeded empirical fixture shared by the metrics probes: two 200-tuple
/// relations of random rectangles, R-tree indexed, on a cold simulated
/// disk. Small enough to add negligible time to an analytical sweep.
struct MetricsProbeFixture {
  DiskManager disk{2000};
  BufferPool pool{&disk, 128};
  std::unique_ptr<Relation> r;
  std::unique_ptr<Relation> s;
  std::unique_ptr<RTree> r_rtree;
  std::unique_ptr<RTree> s_rtree;
  std::unique_ptr<RTreeGenTree> r_tree;
  std::unique_ptr<RTreeGenTree> s_tree;
};

inline std::unique_ptr<MetricsProbeFixture> MakeMetricsProbeFixture() {
  auto f = std::make_unique<MetricsProbeFixture>();
  Schema schema({{"id", ValueType::kInt64}, {"box", ValueType::kRectangle}});
  f->r = std::make_unique<Relation>("r", schema, &f->pool,
                                    RelationLayout::kClustered, 300);
  f->s = std::make_unique<Relation>("s", schema, &f->pool,
                                    RelationLayout::kClustered, 300);
  f->r_rtree = std::make_unique<RTree>(&f->pool, RTreeSplit::kQuadratic);
  f->s_rtree = std::make_unique<RTree>(&f->pool, RTreeSplit::kQuadratic);
  Rectangle world(0, 0, 1000, 1000);
  RectGenerator gen_r(world, 7);
  RectGenerator gen_s(world, 13);
  for (int64_t i = 0; i < 200; ++i) {
    Rectangle br = gen_r.NextRect(5, 40);
    Rectangle bs = gen_s.NextRect(5, 40);
    f->r_rtree->Insert(br, f->r->Insert(Tuple({Value(i), Value(br)})));
    f->s_rtree->Insert(bs, f->s->Insert(Tuple({Value(i), Value(bs)})));
  }
  f->r_tree = std::make_unique<RTreeGenTree>(f->r_rtree.get(), f->r.get(), 1);
  f->s_tree = std::make_unique<RTreeGenTree>(f->s_rtree.get(), f->s.get(), 1);
  return f;
}

/// Writes `<artifact>.metrics.json` containing the given pre-serialized
/// sections (each a complete JSON document) plus the registry dump and
/// the process gauges (peak RSS, hardware threads, build provenance) —
/// the latter stamped into every artifact so runs are comparable across
/// machines (`scripts/compare_bench.py` relies on this).
inline void WriteMetricsArtifact(
    const std::string& artifact,
    const std::vector<std::pair<std::string, std::string>>& sections) {
  std::string path = artifact + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  auto trim = [](std::string s) {
    while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
    return s;
  };
  out << "{\n  \"bench\": \"" << artifact << "\"";
  out << ",\n  \"process\": " << trim(ProcessInfoJson());
  for (const auto& [key, json] : sections) {
    out << ",\n  \"" << key << "\": " << trim(json);
  }
  out << ",\n  \"registry\": " << trim(MetricsRegistry::Global().ToJson())
      << "\n}\n";
  std::cout << "metrics artifact: " << path << "\n";
}

/// Empirical probe for the JOIN figures: Algorithm JOIN over two seeded
/// R-trees, traced per QualPairs level, followed by the explain-analyze
/// comparison against the cost model fit to the observed workload.
inline void RunJoinMetricsProbe(const std::string& artifact,
                                MatchDistribution dist) {
  MetricsRegistry::Global().ResetAll();
  auto f = MakeMetricsProbeFixture();
  OverlapsOp op;

  SJ_CHECK_OK(f->pool.Clear());
  f->pool.ResetStats();
  f->disk.ResetStats();
  IoStats io_before = f->disk.stats();

  QueryTrace trace("join", MatchDistributionName(dist));
  SpatialJoinContext ctx;
  ctx.r = f->r.get();
  ctx.col_r = 1;
  ctx.s = f->s.get();
  ctx.col_s = 1;
  ctx.r_tree = f->r_tree.get();
  ctx.s_tree = f->s_tree.get();
  ctx.trace = &trace;
  JoinResult result = ExecuteJoin(JoinStrategy::kTreeJoin, ctx, op);

  IoStats io_delta = f->disk.stats() - io_before;
  JoinStatistics stats =
      EstimateJoinStatistics(*f->r, 1, *f->s, 1, op, 200, 42);
  PlannerContext pctx;
  pctx.r_tree_available = true;
  pctx.s_tree_available = true;
  pctx.overlap_like = true;
  JoinPlan plan = PlanJoin(stats, pctx);
  ModelParameters params = FitModelParameters(stats);
  MeasuredJoin measured =
      MeasureJoin(result, io_delta, f->pool.stats(), trace.wall_ns());
  ExplainReport report = ExplainAnalyzeJoin(JoinStrategy::kTreeJoin, plan,
                                            params, dist, measured, &trace);
  std::cout << "\n" << report.ToString();

  // Post-run structural audit: both operand trees and the pool must still
  // satisfy their invariants after the traversal (paper §3.1 PART-OF).
  audit::AuditReport tree_audit = audit::AuditRTree(*f->r_rtree);
  tree_audit.Merge(audit::AuditRTree(*f->s_rtree));
  tree_audit.Merge(audit::AuditBufferPool(f->pool));
  WriteMetricsArtifact(artifact, {{"trace", trace.ToJson()},
                                  {"explain", report.ToJson()},
                                  {"audit", tree_audit.ToJson()}});
}

/// Empirical probe for the SELECT figures: Algorithm SELECT over a seeded
/// R-tree, traced per height.
inline void RunSelectMetricsProbe(const std::string& artifact,
                                  MatchDistribution dist) {
  MetricsRegistry::Global().ResetAll();
  auto f = MakeMetricsProbeFixture();
  OverlapsOp op;

  SJ_CHECK_OK(f->pool.Clear());
  f->pool.ResetStats();
  f->disk.ResetStats();

  QueryTrace trace("select", MatchDistributionName(dist));
  SpatialJoinContext ctx;
  ctx.s = f->s.get();
  ctx.col_s = 1;
  ctx.s_tree = f->s_tree.get();
  ctx.trace = &trace;
  Value selector(Rectangle(400, 400, 600, 600));
  ExecuteSelect(SelectStrategy::kTree, ctx, selector, kInvalidTupleId, op);
  audit::AuditReport tree_audit = audit::AuditRTree(*f->s_rtree);
  tree_audit.Merge(audit::AuditBufferPool(f->pool));
  WriteMetricsArtifact(artifact, {{"trace", trace.ToJson()},
                                  {"audit", tree_audit.ToJson()}});
}

/// Reproduces one SELECT figure (Fig. 8/9/10): C_I, C_IIa, C_IIb, C_III
/// against selectivity p on a log grid, plus the per-row winner. A
/// non-empty `artifact` also runs the empirical probe and dumps
/// `<artifact>.metrics.json`.
inline void RunSelectFigure(const std::string& title, MatchDistribution dist,
                            const std::string& artifact = "",
                            double p_lo = 1e-4, double p_hi = 1.0,
                            int points = 17) {
  ModelParameters params = PaperParameters();
  PrintHeader(title, params);
  TableReport table({"p", "C_I", "C_IIa", "C_IIb", "C_III"});
  for (double p : LogSpace(p_lo, p_hi, points)) {
    params.p = p;
    SelectCosts costs = ComputeSelectCosts(params, dist);
    table.AddRow({p, costs.c_i, costs.c_iia, costs.c_iib, costs.c_iii});
  }
  table.Print(std::cout);
  std::cout << "winners:";
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::cout << " " << table.columns()[table.ArgMinOfRow(row)];
  }
  std::cout << "\n\n";
  if (!artifact.empty()) RunSelectMetricsProbe(artifact, dist);
}

/// Reproduces one JOIN figure (Fig. 11/12/13): D_I, D_IIa, D_IIb, D_III.
/// A non-empty `artifact` also runs the empirical probe, prints the
/// explain-analyze report, and dumps `<artifact>.metrics.json`.
inline void RunJoinFigure(const std::string& title, MatchDistribution dist,
                          const std::string& artifact = "",
                          double p_lo = 1e-12, double p_hi = 1e-2,
                          int points = 21) {
  ModelParameters params = PaperParameters();
  PrintHeader(title, params);
  TableReport table({"p", "D_I", "D_IIa", "D_IIb", "D_III"});
  for (double p : LogSpace(p_lo, p_hi, points)) {
    params.p = p;
    JoinCosts costs = ComputeJoinCosts(params, dist);
    table.AddRow({p, costs.d_i, costs.d_iia, costs.d_iib, costs.d_iii});
  }
  table.Print(std::cout);
  std::cout << "winners:";
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::cout << " " << table.columns()[table.ArgMinOfRow(row)];
  }
  // Locate the II/III crossover (first p where the tree beats the index).
  double crossover = -1.0;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const auto& r = table.row(row);
    if (r[4] > r[2]) {  // D_III > D_IIa
      crossover = r[0];
      break;
    }
  }
  std::cout << "\nD_III/D_IIa crossover near p = ";
  if (crossover < 0) {
    std::cout << "(none in sweep)";
  } else {
    std::printf("%.2e", crossover);
  }
  std::cout << "\n\n";
  if (!artifact.empty()) RunJoinMetricsProbe(artifact, dist);
}

}  // namespace bench
}  // namespace spatialjoin

#endif  // SPATIALJOIN_BENCH_FIGURE_COMMON_H_
