// P1 follow-up — does the cost-model planner pick well? For several
// workloads we measure every executable strategy's actual cost
// (θ-tests + 1000·reads, cold pool) and compare the planner's choice
// against the measured best, reporting the regret ratio
// cost(planned) / cost(best).
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "common/check.h"
#include "core/index_nested_loop.h"
#include "core/join_index.h"
#include "core/planner.h"
#include "core/spatial_join.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

using namespace spatialjoin;

namespace {

void RunWorkload(const char* label, int n_tuples, double min_ext,
                 double max_ext) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 512);
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  Relation r("r", schema, &pool);
  Relation s("s", schema, &pool);
  RTree r_rtree(&pool, RTreeSplit::kQuadratic);
  RTree s_rtree(&pool, RTreeSplit::kQuadratic);
  ZGrid grid(Rectangle(0, 0, 2000, 2000));
  RectGenerator gen_r(grid.world(), 5);
  RectGenerator gen_s(grid.world(), 6);
  for (int64_t i = 0; i < n_tuples; ++i) {
    Rectangle br = gen_r.NextRect(min_ext, max_ext);
    Rectangle bs = gen_s.NextRect(min_ext, max_ext);
    r_rtree.Insert(br, r.Insert(Tuple({Value(i), Value(br)})));
    s_rtree.Insert(bs, s.Insert(Tuple({Value(i), Value(bs)})));
  }
  RTreeGenTree r_tree(&r_rtree, &r, 1);
  RTreeGenTree s_tree(&s_rtree, &s, 1);
  JoinIndex index(&pool, 100);
  OverlapsOp op;
  index.Build(r, 1, s, 1, op);

  SpatialJoinContext ctx;
  ctx.r = &r;
  ctx.col_r = 1;
  ctx.s = &s;
  ctx.col_s = 1;
  ctx.r_tree = &r_tree;
  ctx.s_tree = &s_tree;
  ctx.join_index = &index;
  ctx.zgrid = &grid;
  ctx.nested_loop_options.memory_pages = 64;

  // Measure every strategy.
  std::map<JoinStrategy, double> measured;
  for (JoinStrategy strategy :
       {JoinStrategy::kNestedLoop, JoinStrategy::kTreeJoin,
        JoinStrategy::kIndexNestedLoop, JoinStrategy::kSortMergeZOrder,
        JoinStrategy::kJoinIndex}) {
    SJ_CHECK_OK(pool.Clear());
    disk.ResetStats();
    JoinResult result = ExecuteJoin(strategy, ctx, op);
    measured[strategy] =
        static_cast<double>(result.theta_tests +
                            result.theta_upper_tests) +
        1000.0 * static_cast<double>(disk.stats().page_reads);
  }
  JoinStrategy best = JoinStrategy::kNestedLoop;
  for (const auto& [strategy, cost] : measured) {
    if (cost < measured[best]) best = strategy;
  }

  // Ask the planner (sampling pays θ tests; charged separately below).
  JoinStatistics stats = EstimateJoinStatistics(r, 1, s, 1, op, 500, 77);
  PlannerContext planner_ctx;
  planner_ctx.r_tree_available = true;
  planner_ctx.s_tree_available = true;
  planner_ctx.join_index_available = true;
  planner_ctx.overlap_like = true;
  JoinPlan plan = PlanJoin(stats, planner_ctx);

  double regret = measured[plan.strategy] / measured[best];
  std::printf("%-28s p-hat=%.4f planned=%-18s best=%-18s regret=%.2fx\n",
              label, stats.selectivity, JoinStrategyName(plan.strategy),
              JoinStrategyName(best), regret);
}

}  // namespace

int main() {
  std::cout << "P1 — planner choice vs measured best (overlap joins; "
               "cost = theta-tests + 1000 * cold reads; regret = "
               "cost(planned)/cost(best); join-index precompute excluded "
               "from its query cost, as in the paper)\n\n";
  RunWorkload("small, sparse (300, 2-10)", 300, 2, 10);
  RunWorkload("medium, sparse (800, 2-15)", 800, 2, 15);
  RunWorkload("medium, dense (800, 30-90)", 800, 30, 90);
  RunWorkload("large, mixed (2000, 5-40)", 2000, 5, 40);
  std::cout << "\nReading: fed only sampled selectivity and the paper's "
               "formulas (which assume million-tuple relations), the "
               "planner lands within ~5x of the measured best and never "
               "near the nested loop's 10-100x. Its conservative "
               "tree-join default reflects §5's decision rule: the "
               "measured winners here (join index, sort-merge) each need "
               "extra context — amortized precompute or an overlap-only "
               "operator — that the rule deliberately discounts.\n";
  return 0;
}
