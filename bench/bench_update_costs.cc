// Reproduces the paper's update-cost analysis (§4.2, plotted alongside
// Figs. 8–13): U_I, U_IIa, U_IIb, and U_III(T) for varying database
// sizes T. Updates are distribution-independent.
#include <iostream>

#include "costmodel/parameters.h"
#include "costmodel/report.h"
#include "costmodel/update_cost.h"
#include "figure_common.h"

using spatialjoin::ComputeUpdateCosts;
using spatialjoin::ModelParameters;
using spatialjoin::PaperParameters;
using spatialjoin::TableReport;
using spatialjoin::UpdateCosts;

int main() {
  ModelParameters params = PaperParameters();
  spatialjoin::bench::PrintHeader("Update costs (paper §4.2)", params);

  UpdateCosts base = ComputeUpdateCosts(params);
  std::cout << "At Table-3 defaults (T = N = " << params.N() << "):\n";
  TableReport single({"U_I", "U_IIa", "U_IIb", "U_III"});
  single.AddRow({base.u_i, base.u_iia, base.u_iib, base.u_iii});
  single.Print(std::cout);
  std::cout << "\nU_III / U_IIb ratio: " << base.u_iii / base.u_iib
            << "  (the paper: join-index updates are 'almost "
               "prohibitively high')\n\n";

  std::cout << "Scaling with total database size T:\n";
  TableReport sweep({"T", "U_I", "U_IIa", "U_IIb", "U_III"});
  for (int64_t t = 10000; t <= 100000000; t *= 10) {
    params.T = t;
    UpdateCosts costs = ComputeUpdateCosts(params);
    sweep.AddRow({static_cast<double>(t), costs.u_i, costs.u_iia,
                  costs.u_iib, costs.u_iii});
  }
  sweep.Print(std::cout);
  return 0;
}
