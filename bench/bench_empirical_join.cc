// Experiment E2 — the real join strategies end-to-end on synthetic data
// over the simulated disk: blocked nested loop, Algorithm JOIN over two
// R-trees, index nested loop, z-order sort-merge, and a precomputed join
// index, all computing the same overlap join. Reported per strategy:
// result size, θ/Θ evaluations, page reads (cold buffer pool), and the
// cost in the paper's units (C_θ·tests + C_IO·reads). Emits
// bench_empirical_join.metrics.json with the per-scale, per-strategy
// counter table (all seeded-deterministic — this artifact seeds the
// regression baseline for scripts/compare_bench.py).
//
// Usage: bench_empirical_join [--threads=N] [--trace=out.trace.json]
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/check.h"
#include "core/index_nested_loop.h"
#include "core/join_index.h"
#include "core/spatial_join.h"
#include "exec/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "quadtree/quadtree.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

#include "figure_common.h"

using namespace spatialjoin;

namespace {

constexpr double kCio = 1000.0;  // paper Table 3

struct Fixture {
  DiskManager disk{2000};
  BufferPool pool{&disk, 512};
  std::unique_ptr<Relation> r;
  std::unique_ptr<Relation> s;
  std::unique_ptr<RTree> r_rtree;
  std::unique_ptr<RTree> s_rtree;
  std::unique_ptr<RTreeGenTree> r_tree;
  std::unique_ptr<RTreeGenTree> s_tree;
  std::unique_ptr<QuadTree> r_quadtree;
  std::unique_ptr<JoinIndex> join_index;
  ZGrid grid{Rectangle(0, 0, 2000, 2000)};
  int64_t join_index_build_tests = 0;
};

std::unique_ptr<Fixture> MakeFixture(int n_tuples, double min_ext,
                                     double max_ext) {
  auto f = std::make_unique<Fixture>();
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  f->r = std::make_unique<Relation>("r", schema, &f->pool,
                                    RelationLayout::kClustered, 300);
  f->s = std::make_unique<Relation>("s", schema, &f->pool,
                                    RelationLayout::kClustered, 300);
  f->r_rtree = std::make_unique<RTree>(&f->pool, RTreeSplit::kQuadratic);
  f->s_rtree = std::make_unique<RTree>(&f->pool, RTreeSplit::kQuadratic);
  RectGenerator gen_r(f->grid.world(), 11);
  RectGenerator gen_s(f->grid.world(), 22);
  for (int64_t i = 0; i < n_tuples; ++i) {
    Rectangle br = gen_r.NextRect(min_ext, max_ext);
    Rectangle bs = gen_s.NextRect(min_ext, max_ext);
    f->r_rtree->Insert(br, f->r->Insert(Tuple({Value(i), Value(br)})));
    f->s_rtree->Insert(bs, f->s->Insert(Tuple({Value(i), Value(bs)})));
  }
  f->r_tree = std::make_unique<RTreeGenTree>(f->r_rtree.get(), f->r.get(), 1);
  f->s_tree = std::make_unique<RTreeGenTree>(f->s_rtree.get(), f->s.get(), 1);
  f->r_quadtree = std::make_unique<QuadTree>(f->grid.world(), 10);
  f->r->Scan([&](TupleId tid, const Tuple& t) {
    f->r_quadtree->Insert(t.value(1).Mbr(), tid);
  });
  f->r_quadtree->AttachRelation(f->r.get(), 1);
  f->join_index = std::make_unique<JoinIndex>(&f->pool, 100);
  OverlapsOp op;
  f->join_index_build_tests = f->join_index->Build(*f->r, 1, *f->s, 1, op);
  return f;
}

void Report(const char* name, const JoinResult& result, int64_t reads,
            JsonWriter* rows) {
  double tests =
      static_cast<double>(result.theta_tests + result.theta_upper_tests);
  double cost = tests + kCio * static_cast<double>(reads);
  std::printf("%-20s matches=%7zu theta=%9lld Theta=%9lld reads=%7lld "
              "cost=%.3e\n",
              name, result.matches.size(),
              static_cast<long long>(result.theta_tests),
              static_cast<long long>(result.theta_upper_tests),
              static_cast<long long>(reads), cost);
  rows->BeginObject();
  rows->KV("strategy", name);
  rows->KV("matches", static_cast<int64_t>(result.matches.size()));
  rows->KV("theta_tests", result.theta_tests);
  rows->KV("theta_upper_tests", result.theta_upper_tests);
  rows->KV("page_reads", reads);
  rows->KV("cost", cost);
  rows->EndObject();
}

void RunScale(int n_tuples, double min_ext, double max_ext, int threads,
              JsonWriter* scales) {
  auto f = MakeFixture(n_tuples, min_ext, max_ext);
  OverlapsOp op;
  exec::ThreadPool workers(threads);
  SpatialJoinContext ctx;
  ctx.r = f->r.get();
  ctx.col_r = 1;
  ctx.s = f->s.get();
  ctx.col_s = 1;
  ctx.r_tree = f->r_tree.get();
  ctx.s_tree = f->s_tree.get();
  ctx.join_index = f->join_index.get();
  ctx.zgrid = &f->grid;
  ctx.exec_pool = &workers;
  ctx.nested_loop_options.memory_pages = 64;  // scaled-down M

  std::cout << "\n|R| = |S| = " << n_tuples << ", object extent ["
            << min_ext << ", " << max_ext << "] in a 2000x2000 world"
            << " (join-index precompute: " << f->join_index_build_tests
            << " theta tests, " << f->join_index->num_pages()
            << " index pages; " << threads << " worker threads)\n";
  scales->BeginObject();
  scales->KV("n_tuples", int64_t{n_tuples});
  scales->KV("min_ext", min_ext);
  scales->KV("max_ext", max_ext);
  scales->KV("join_index_build_tests", f->join_index_build_tests);
  scales->KV("join_index_pages", f->join_index->num_pages());
  scales->Key("strategies");
  scales->BeginArray();
  for (JoinStrategy strategy :
       {JoinStrategy::kNestedLoop, JoinStrategy::kTreeJoin,
        JoinStrategy::kIndexNestedLoop, JoinStrategy::kSortMergeZOrder,
        JoinStrategy::kJoinIndex, JoinStrategy::kParallelTreeJoin,
        JoinStrategy::kPartitionedJoin}) {
    SJ_CHECK_OK(f->pool.Clear());
    f->disk.ResetStats();
    JoinResult result = ExecuteJoin(strategy, ctx, op);
    NormalizeMatches(&result);
    Report(JoinStrategyName(strategy), result, f->disk.stats().page_reads,
           scales);
  }
  // Algorithm JOIN across tree families: quadtree on R, R-tree on S.
  SJ_CHECK_OK(f->pool.Clear());
  f->disk.ResetStats();
  JoinResult mixed = TreeJoin(*f->r_quadtree, *f->s_tree, op);
  NormalizeMatches(&mixed);
  Report("tree_join(quad+R)", mixed, f->disk.stats().page_reads, scales);
  scales->EndArray();
  scales->EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  int threads = args.threads > 0 ? args.threads : 2;
  std::cout << "E2 — measured join strategies on the simulated disk "
               "(cold buffer pool; cost = theta-tests + 1000 * reads; "
               "--threads=N sizes the exec pool)\n";
  MetricsRegistry::Global().ResetAll();
  std::ostringstream scales_json;
  JsonWriter scales(scales_json);
  scales.BeginArray();
  RunScale(500, 5, 40, threads, &scales);    // moderately selective
  RunScale(1500, 5, 40, threads, &scales);   // larger relations
  RunScale(800, 30, 120, threads, &scales);  // low selectivity
  scales.EndArray();
  std::cout << "\nExpected shape (paper §4.5): nested loop never "
               "competitive; the join index wins at query time when the "
               "result is small, at the price of the precompute column; "
               "tree strategies sit in between and need no "
               "precomputation.\n";
  bench::WriteMetricsArtifact("bench_empirical_join",
                              {{"scales", scales_json.str()}});
  bench::MaybeWriteTrace(args);
  bench::MaybeWriteFlightDump(args);
  return 0;
}
