// Ablation A1 — the paper's §3.2 remark: "The efficiency of depth-first
// vs. breadth-first depends on the physical clustering properties of the
// underlying generalization tree." We run Algorithm SELECT in both
// traversal orders over (a) a relation clustered in breadth-first tree
// order (strategy IIb) and (b) a shuffled heap relation (strategy IIa),
// with a small buffer pool so access order matters, and report page
// reads. Logical work (θ/Θ tests) is identical by construction.
#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "core/select.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"
#include "workload/rect_generator.h"

using namespace spatialjoin;

namespace {

void RunLayout(const char* label, RelationLayout layout, bool shuffle,
               int64_t pool_pages) {
  DiskManager disk(2000);
  BufferPool pool(&disk, pool_pages);
  HierarchyOptions options;
  options.height = 5;
  options.fanout = 4;  // 1365 nodes
  GeneratedHierarchy h =
      GenerateHierarchy(Rectangle(0, 0, 1024, 1024), options, &pool, layout,
                        /*pad_tuples_to=*/300, shuffle);
  OverlapsOp op;
  RectGenerator gen(Rectangle(0, 0, 1024, 1024), 77);

  int64_t reads_bfs = 0;
  int64_t reads_dfs = 0;
  int64_t tests = 0;
  const int queries = 30;
  for (int q = 0; q < queries; ++q) {
    Value selector(gen.NextRect(50, 300));
    SJ_CHECK_OK(pool.Clear());
    disk.ResetStats();
    SelectResult bfs =
        SpatialSelect(selector, *h.tree, op, Traversal::kBreadthFirst);
    reads_bfs += disk.stats().page_reads;
    SJ_CHECK_OK(pool.Clear());
    disk.ResetStats();
    SelectResult dfs =
        SpatialSelect(selector, *h.tree, op, Traversal::kDepthFirst);
    reads_dfs += disk.stats().page_reads;
    tests += bfs.theta_upper_tests;
    if (bfs.theta_upper_tests != dfs.theta_upper_tests) {
      std::cerr << "traversals diverged logically!\n";
    }
  }
  std::printf("%-28s Theta-tests=%6lld  reads(BFS)=%6lld  reads(DFS)=%6lld"
              "  DFS/BFS=%.3f\n",
              label, static_cast<long long>(tests),
              static_cast<long long>(reads_bfs),
              static_cast<long long>(reads_dfs),
              static_cast<double>(reads_dfs) /
                  static_cast<double>(reads_bfs));
}

}  // namespace

int main() {
  std::cout << "A1 — BFS vs DFS traversal x clustered vs unclustered "
               "layout (30 window selections, cold pool per query)\n\n";
  for (int64_t pool_pages : {8, 32, 128}) {
    std::cout << "buffer pool = " << pool_pages << " pages\n";
    RunLayout("  IIb: BFS-clustered file", RelationLayout::kClustered,
              false, pool_pages);
    RunLayout("  IIa: shuffled heap file", RelationLayout::kHeap, true,
              pool_pages);
    std::cout << "\n";
  }
  std::cout << "Reading: with BFS-order clustering, breadth-first "
               "traversal matches the physical layout and wins under "
               "memory pressure; with a shuffled file the traversal "
               "order is irrelevant — exactly the paper's §3.2 remark.\n";
  return 0;
}
