#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/theta_ops.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

TEST(CenterpointTest, AllSpatialTypes) {
  EXPECT_EQ(CenterpointOf(Value(Point(3, 4))), Point(3, 4));
  EXPECT_EQ(CenterpointOf(Value(Rectangle(0, 0, 2, 4))), Point(1, 2));
  Polygon square({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_EQ(CenterpointOf(Value(square)), Point(1, 1));
}

TEST(GeometryHelpersTest, MixedTypeDistance) {
  Value point(Point(0, 0));
  Value rect(Rectangle(3, 0, 5, 2));
  Value poly(Polygon({{0, 5}, {2, 5}, {1, 7}}));
  EXPECT_DOUBLE_EQ(MinDistanceBetween(point, rect), 3.0);
  EXPECT_DOUBLE_EQ(MinDistanceBetween(rect, point), 3.0);
  EXPECT_DOUBLE_EQ(MinDistanceBetween(point, poly), 5.0);
  EXPECT_DOUBLE_EQ(MinDistanceBetween(rect, poly), 0.0 +
                       MinDistanceBetween(poly, rect));
  EXPECT_DOUBLE_EQ(MinDistanceBetween(point, point), 0.0);
}

TEST(GeometryHelpersTest, MixedTypeOverlap) {
  Value rect(Rectangle(0, 0, 2, 2));
  EXPECT_TRUE(GeometriesOverlap(Value(Point(1, 1)), rect));
  EXPECT_FALSE(GeometriesOverlap(Value(Point(3, 3)), rect));
  Value poly(Polygon({{1, 1}, {3, 1}, {3, 3}, {1, 3}}));
  EXPECT_TRUE(GeometriesOverlap(rect, poly));
  EXPECT_TRUE(GeometriesOverlap(poly, rect));
  EXPECT_FALSE(GeometriesOverlap(Value(Rectangle(5, 5, 6, 6)), poly));
}

TEST(GeometryHelpersTest, Containment) {
  Value big(Rectangle(0, 0, 10, 10));
  Value small(Rectangle(1, 1, 2, 2));
  EXPECT_TRUE(GeometryContains(big, small));
  EXPECT_FALSE(GeometryContains(small, big));
  EXPECT_TRUE(GeometryContains(big, Value(Point(5, 5))));
  Value poly(Polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  EXPECT_TRUE(GeometryContains(poly, small));
}

TEST(GeometryHelpersTest, PolylineSupport) {
  Value river(Polyline({{0, 5}, {10, 5}}));
  // Centerpoint of a curve: its arc-length midpoint.
  EXPECT_EQ(CenterpointOf(river), Point(5, 5));
  // Distances against every other type.
  EXPECT_DOUBLE_EQ(MinDistanceBetween(river, Value(Point(5, 8))), 3.0);
  EXPECT_DOUBLE_EQ(MinDistanceBetween(Value(Point(5, 8)), river), 3.0);
  EXPECT_DOUBLE_EQ(
      MinDistanceBetween(river, Value(Rectangle(2, 6, 4, 7))), 1.0);
  EXPECT_DOUBLE_EQ(
      MinDistanceBetween(river, Value(Rectangle(2, 4, 4, 6))), 0.0);
  Value other(Polyline({{0, 7}, {10, 7}}));
  EXPECT_DOUBLE_EQ(MinDistanceBetween(river, other), 2.0);
  Value crossing(Polyline({{5, 0}, {5, 10}}));
  EXPECT_DOUBLE_EQ(MinDistanceBetween(river, crossing), 0.0);
  // Overlap = distance-0 contact for curves.
  EXPECT_TRUE(GeometriesOverlap(river, crossing));
  EXPECT_FALSE(GeometriesOverlap(river, other));
  // Containment: areas contain curves, curves contain on-curve points.
  Value area(Polygon({{-1, 0}, {11, 0}, {11, 10}, {-1, 10}}));
  EXPECT_TRUE(GeometryContains(area, river));
  EXPECT_FALSE(GeometryContains(river, area));
  EXPECT_TRUE(GeometryContains(river, Value(Point(3, 5))));
  EXPECT_FALSE(GeometryContains(river, Value(Point(3, 6))));
  Value small_area(Polygon({{2, 4}, {6, 4}, {6, 6}, {2, 6}}));
  EXPECT_FALSE(GeometryContains(small_area, river));  // river exits
}

TEST(ThetaOpsTest, PolylineWithOperators) {
  Value road(Polyline({{0, 0}, {20, 0}}));
  Value town(Rectangle(5, 3, 8, 6));
  ReachableWithinOp reachable(2.0, 2.0);  // 4 units
  EXPECT_TRUE(reachable.Theta(road, town));
  WithinDistanceOp within(12.0);  // centerpoints: (10,0) vs (6.5,4.5)
  EXPECT_TRUE(within.Theta(road, town));
  OverlapsOp overlaps;
  EXPECT_FALSE(overlaps.Theta(road, town));
  EXPECT_TRUE(overlaps.Theta(road, Value(Rectangle(5, -1, 8, 1))));
}

TEST(WithinDistanceOpTest, CenterpointSemantics) {
  WithinDistanceOp op(5.0);
  // θ measures between centerpoints (Table 1).
  Value a(Rectangle(0, 0, 2, 2));   // center (1,1)
  Value b(Rectangle(4, 1, 6, 1.0));  // degenerate; center (5,1)
  EXPECT_TRUE(op.Theta(a, b));   // distance 4 ≤ 5
  Value c(Rectangle(8, 1, 10, 1));  // center (9,1): distance 8
  EXPECT_FALSE(op.Theta(a, c));
  // Θ measures between closest points of the MBRs.
  EXPECT_TRUE(op.ThetaUpper(Rectangle(0, 0, 2, 2), Rectangle(6, 0, 8, 2)));
  EXPECT_FALSE(op.ThetaUpper(Rectangle(0, 0, 2, 2),
                             Rectangle(8, 0, 9, 2)));
  EXPECT_TRUE(op.is_symmetric());
}

TEST(OverlapsOpTest, Semantics) {
  OverlapsOp op;
  EXPECT_TRUE(op.Theta(Value(Rectangle(0, 0, 2, 2)),
                       Value(Rectangle(1, 1, 3, 3))));
  EXPECT_FALSE(op.Theta(Value(Rectangle(0, 0, 1, 1)),
                        Value(Rectangle(2, 2, 3, 3))));
  EXPECT_TRUE(op.ThetaUpper(Rectangle(0, 0, 2, 2), Rectangle(1, 1, 3, 3)));
}

TEST(IncludesOpTest, AsymmetricPair) {
  IncludesOp includes;
  ContainedInOp contained;
  Value big(Rectangle(0, 0, 10, 10));
  Value small(Rectangle(2, 2, 3, 3));
  EXPECT_TRUE(includes.Theta(big, small));
  EXPECT_FALSE(includes.Theta(small, big));
  EXPECT_TRUE(contained.Theta(small, big));
  EXPECT_FALSE(contained.Theta(big, small));
  // Θ for both is plain overlap (Fig. 4).
  EXPECT_TRUE(includes.ThetaUpper(Rectangle(0, 0, 2, 2),
                                  Rectangle(1, 1, 3, 3)));
}

TEST(NorthwestOfOpTest, QuadrantConstruction) {
  NorthwestOfOp op;
  EXPECT_TRUE(op.Theta(Value(Point(0, 10)), Value(Point(5, 5))));
  EXPECT_FALSE(op.Theta(Value(Point(6, 10)), Value(Point(5, 5))));
  // Fig. 5: Θ true iff a overlaps the NW quadrant of b.
  Rectangle b(4, 4, 6, 6);
  EXPECT_TRUE(op.ThetaUpper(Rectangle(0, 8, 1, 9), b));   // clearly NW
  EXPECT_TRUE(op.ThetaUpper(Rectangle(5, 5, 7, 7), b));   // overlaps quad
  EXPECT_FALSE(op.ThetaUpper(Rectangle(7, 0, 8, 3), b));  // SE: x > max_x
  EXPECT_FALSE(op.ThetaUpper(Rectangle(0, 0, 1, 3), b));  // S: y < min_y
}

TEST(ReachableWithinOpTest, SpeedModel) {
  ReachableWithinOp op(10.0, 2.0);  // 10 minutes at 2 km/min → 20 km
  EXPECT_TRUE(op.Theta(Value(Point(0, 0)), Value(Point(20, 0))));
  EXPECT_FALSE(op.Theta(Value(Point(0, 0)), Value(Point(20.1, 0))));
  EXPECT_TRUE(op.ThetaUpper(Rectangle(0, 0, 1, 1),
                            Rectangle(21, 0, 22, 1)));
  EXPECT_FALSE(op.ThetaUpper(Rectangle(0, 0, 1, 1),
                             Rectangle(21.2, 0, 22, 1)));
}

TEST(AdjacentOpTest, Fig1Semantics) {
  AdjacentOp op;
  // The paper's Fig.-1 situation: grid-neighbor squares touch without
  // sharing interior — adjacent; overlapping or distant squares are not.
  Value o3(Rectangle(0, 0, 1, 1));
  Value o9(Rectangle(1, 0, 2, 1));   // shares the x=1 edge
  Value corner(Rectangle(1, 1, 2, 2));  // shares only the corner (1,1)
  Value overlapping(Rectangle(0.5, 0, 1.5, 1));
  Value apart(Rectangle(3, 3, 4, 4));
  EXPECT_TRUE(op.Theta(o3, o9));
  EXPECT_TRUE(op.Theta(o9, o3));
  EXPECT_TRUE(op.Theta(o3, corner));
  EXPECT_FALSE(op.Theta(o3, overlapping));
  EXPECT_FALSE(op.Theta(o3, apart));
  EXPECT_FALSE(op.Theta(o3, o3));  // shares its own interior
  // Θ is closed overlap — conservative for adjacency.
  EXPECT_TRUE(op.ThetaUpper(o3.Mbr(), o9.Mbr()));
  EXPECT_TRUE(op.ThetaUpper(o3.Mbr(), overlapping.Mbr()));
  EXPECT_FALSE(op.ThetaUpper(o3.Mbr(), apart.Mbr()));
}

TEST(AdjacentOpTest, MixedGeometryAdjacency) {
  AdjacentOp op;
  // A point on a rectangle's edge: contact without interior.
  EXPECT_TRUE(op.Theta(Value(Point(1, 0.5)), Value(Rectangle(1, 0, 2, 1))));
  EXPECT_FALSE(op.Theta(Value(Point(3, 3)), Value(Rectangle(1, 0, 2, 1))));
  // Polygons sharing an edge vs properly crossing.
  Polygon left({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  Polygon right({{2, 0}, {4, 0}, {4, 2}, {2, 2}});
  Polygon crossing({{1, -1}, {3, -1}, {3, 1}, {1, 1}});
  EXPECT_TRUE(op.Theta(Value(left), Value(right)));
  EXPECT_FALSE(op.Theta(Value(left), Value(crossing)));
  // A polyline ending on a polygon boundary.
  Polyline road({{2, 3}, {2, 2}});
  EXPECT_TRUE(op.Theta(Value(road), Value(left)));
}

TEST(CountingThetaTest, CountsBothLevels) {
  OverlapsOp inner;
  CountingTheta counting(&inner);
  counting.Theta(Value(Point(0, 0)), Value(Point(0, 0)));
  counting.ThetaUpper(Rectangle(0, 0, 1, 1), Rectangle(0, 0, 1, 1));
  counting.ThetaUpper(Rectangle(0, 0, 1, 1), Rectangle(5, 5, 6, 6));
  EXPECT_EQ(counting.theta_count(), 1);
  EXPECT_EQ(counting.theta_upper_count(), 2);
  EXPECT_EQ(counting.total_count(), 3);
  counting.Reset();
  EXPECT_EQ(counting.total_count(), 0);
}

// The defining Table-1 property: θ(a, b) on the objects implies Θ on any
// rectangles enclosing them. Verified for every operator over random
// geometry pairs and random enclosing rectangles.
class ThetaImplicationTest
    : public ::testing::TestWithParam<int> {};

TEST_P(ThetaImplicationTest, ThetaImpliesThetaUpper) {
  std::vector<std::unique_ptr<ThetaOperator>> ops;
  ops.push_back(std::make_unique<WithinDistanceOp>(15.0));
  ops.push_back(std::make_unique<OverlapsOp>());
  ops.push_back(std::make_unique<IncludesOp>());
  ops.push_back(std::make_unique<ContainedInOp>());
  ops.push_back(std::make_unique<NorthwestOfOp>());
  ops.push_back(std::make_unique<ReachableWithinOp>(5.0, 2.0));
  ops.push_back(std::make_unique<AdjacentOp>());
  const ThetaOperator& op = *ops[static_cast<size_t>(GetParam())];

  RectGenerator gen(Rectangle(0, 0, 100, 100), 1000 + GetParam());
  Rng rng(2000 + static_cast<uint64_t>(GetParam()));
  int theta_true = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    // Mix of points, rectangles, and polygons.
    auto random_value = [&]() -> Value {
      switch (rng.NextUint64(3)) {
        case 0:
          return Value(gen.NextPoint());
        case 1:
          return Value(gen.NextRect(0.5, 25));
        default:
          return Value(gen.NextPolygon(0.5, 8, 7));
      }
    };
    Value a = random_value();
    Value b = random_value();
    if (!op.Theta(a, b)) continue;
    ++theta_true;
    // Any enclosing rectangles must Θ-match.
    Rectangle ea = a.Mbr().Expanded(rng.NextDouble(0, 5));
    Rectangle eb = b.Mbr().Expanded(rng.NextDouble(0, 5));
    EXPECT_TRUE(op.ThetaUpper(a.Mbr(), b.Mbr()))
        << op.name() << " a=" << a.ToString() << " b=" << b.ToString();
    EXPECT_TRUE(op.ThetaUpper(ea, eb)) << op.name();
  }
  // The workload must actually exercise matches.
  EXPECT_GT(theta_true, 0) << op.name();
}

INSTANTIATE_TEST_SUITE_P(AllOperators, ThetaImplicationTest,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace spatialjoin
