#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "common/check.h"
#include "core/planner.h"
#include "core/spatial_join.h"
#include "core/theta_ops.h"
#include "json_validator.h"
#include "obs/explain.h"
#include "obs/trace.h"
#include "relational/relation.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

using testing_json::IsValidJson;

// Deterministic seeded workload: two 150-rectangle relations, R-tree
// indexed, joined with the tree strategy under a trace. The explain
// report built from it must line up predicted against measured values
// with finite residual ratios.
class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({{"id", ValueType::kInt64}, {"box", ValueType::kRectangle}});
    r_ = std::make_unique<Relation>("r", schema, &pool_,
                                    RelationLayout::kClustered, 300);
    s_ = std::make_unique<Relation>("s", schema, &pool_,
                                    RelationLayout::kClustered, 300);
    r_rtree_ = std::make_unique<RTree>(&pool_, RTreeSplit::kQuadratic);
    s_rtree_ = std::make_unique<RTree>(&pool_, RTreeSplit::kQuadratic);
    Rectangle world(0, 0, 1000, 1000);
    RectGenerator gen_r(world, 17);
    RectGenerator gen_s(world, 29);
    for (int64_t i = 0; i < 150; ++i) {
      Rectangle br = gen_r.NextRect(5, 50);
      Rectangle bs = gen_s.NextRect(5, 50);
      r_rtree_->Insert(br, r_->Insert(Tuple({Value(i), Value(br)})));
      s_rtree_->Insert(bs, s_->Insert(Tuple({Value(i), Value(bs)})));
    }
    r_tree_ = std::make_unique<RTreeGenTree>(r_rtree_.get(), r_.get(), 1);
    s_tree_ = std::make_unique<RTreeGenTree>(s_rtree_.get(), s_.get(), 1);
  }

  ExplainReport RunExplainedJoin(QueryTrace* trace) {
    OverlapsOp op;
    SJ_CHECK_OK(pool_.Clear());
    pool_.ResetStats();
    disk_.ResetStats();
    IoStats io_before = disk_.stats();

    SpatialJoinContext ctx;
    ctx.r = r_.get();
    ctx.col_r = 1;
    ctx.s = s_.get();
    ctx.col_s = 1;
    ctx.r_tree = r_tree_.get();
    ctx.s_tree = s_tree_.get();
    ctx.trace = trace;
    JoinResult result = ExecuteJoin(JoinStrategy::kTreeJoin, ctx, op);

    IoStats io_delta = disk_.stats() - io_before;
    JoinStatistics stats = EstimateJoinStatistics(*r_, 1, *s_, 1, op, 150, 7);
    PlannerContext pctx;
    pctx.r_tree_available = true;
    pctx.s_tree_available = true;
    pctx.overlap_like = true;
    JoinPlan plan = PlanJoin(stats, pctx);
    ModelParameters params = FitModelParameters(stats);
    double wall = trace != nullptr ? trace->wall_ns() : 0.0;
    MeasuredJoin measured =
        MeasureJoin(result, io_delta, pool_.stats(), wall);
    return ExplainAnalyzeJoin(JoinStrategy::kTreeJoin, plan, params,
                              MatchDistribution::kUniform, measured, trace);
  }

  DiskManager disk_{2000};
  BufferPool pool_{&disk_, 128};
  std::unique_ptr<Relation> r_;
  std::unique_ptr<Relation> s_;
  std::unique_ptr<RTree> r_rtree_;
  std::unique_ptr<RTree> s_rtree_;
  std::unique_ptr<RTreeGenTree> r_tree_;
  std::unique_ptr<RTreeGenTree> s_tree_;
};

TEST_F(ExplainTest, PredictedVsMeasuredPageAccessesFiniteResidual) {
  QueryTrace trace("join", "explain test");
  ExplainReport report = RunExplainedJoin(&trace);

  const ExplainRow* pages = report.Find("page_accesses");
  ASSERT_NE(pages, nullptr);
  EXPECT_GT(pages->predicted, 0.0);
  EXPECT_GT(pages->measured, 0.0);
  EXPECT_TRUE(std::isfinite(pages->residual)) << pages->residual;
  EXPECT_GT(pages->residual, 0.0);

  const ExplainRow* evals = report.Find("theta_evaluations");
  ASSERT_NE(evals, nullptr);
  EXPECT_GT(evals->predicted, 0.0);
  // The measured side is the engine's own Θ+θ count.
  EXPECT_DOUBLE_EQ(
      evals->measured,
      static_cast<double>(trace.TotalThetaUpperTests() +
                          trace.TotalThetaTests()));
  EXPECT_TRUE(std::isfinite(evals->residual));

  const ExplainRow* total = report.Find("total_cost");
  ASSERT_NE(total, nullptr);
  EXPECT_TRUE(std::isfinite(total->residual));
  EXPECT_EQ(report.Find("no_such_metric"), nullptr);
}

TEST_F(ExplainTest, ReportRecordsStrategyAndTrace) {
  QueryTrace trace("join", "explain test");
  ExplainReport report = RunExplainedJoin(&trace);

  EXPECT_EQ(report.executed, JoinStrategy::kTreeJoin);
  EXPECT_TRUE(report.has_trace);
  ASSERT_FALSE(report.trace_levels.empty());
  // The root worklist is the single root pair.
  EXPECT_EQ(report.trace_levels.front().height, 0);
  EXPECT_EQ(report.trace_levels.front().worklist, 1);
  EXPECT_GT(report.matches, 0);
  EXPECT_GT(report.wall_ns, 0.0);
  EXPECT_GT(report.pool_hit_rate, 0.0);
  EXPECT_LE(report.pool_hit_rate, 1.0);

  std::string text = report.ToString();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("page_accesses"), std::string::npos);
  EXPECT_NE(text.find("level"), std::string::npos);
}

TEST_F(ExplainTest, JsonIsValidWithAndWithoutTrace) {
  QueryTrace trace("join", "explain test");
  ExplainReport with_trace = RunExplainedJoin(&trace);
  std::string json = with_trace.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"levels\""), std::string::npos);

  ExplainReport without_trace = RunExplainedJoin(nullptr);
  EXPECT_FALSE(without_trace.has_trace);
  std::string json2 = without_trace.ToJson();
  EXPECT_TRUE(IsValidJson(json2)) << json2;
  EXPECT_EQ(json2.find("\"levels\""), std::string::npos);
}

TEST_F(ExplainTest, DeterministicAcrossRuns) {
  QueryTrace t1("join"), t2("join");
  ExplainReport a = RunExplainedJoin(&t1);
  ExplainReport b = RunExplainedJoin(&t2);
  // Same seeded workload → identical counts (wall time differs).
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_DOUBLE_EQ(a.Find("theta_evaluations")->measured,
                   b.Find("theta_evaluations")->measured);
  EXPECT_DOUBLE_EQ(a.Find("page_accesses")->measured,
                   b.Find("page_accesses")->measured);
}

TEST(ExplainResidualTest, ZeroPredictedZeroMeasuredIsOne) {
  // The join-index strategy predicts zero θ at query time. Build a report
  // with zero measured evaluations: residual must be exactly 1.
  ModelParameters params = PaperParameters();
  params.p = 1e-6;
  JoinPlan plan;
  plan.strategy = JoinStrategy::kJoinIndex;
  MeasuredJoin measured;  // all zero
  ExplainReport report =
      ExplainAnalyzeJoin(JoinStrategy::kJoinIndex, plan, params,
                         MatchDistribution::kUniform, measured);
  const ExplainRow* evals = report.Find("theta_evaluations");
  ASSERT_NE(evals, nullptr);
  EXPECT_DOUBLE_EQ(evals->predicted, 0.0);
  EXPECT_DOUBLE_EQ(evals->residual, 1.0);
  // Non-finite residuals must still serialize to valid JSON (as null).
  MeasuredJoin nonzero;
  nonzero.theta_tests = 5;
  ExplainReport inf_report =
      ExplainAnalyzeJoin(JoinStrategy::kJoinIndex, plan, params,
                         MatchDistribution::kUniform, nonzero);
  EXPECT_TRUE(std::isinf(inf_report.Find("theta_evaluations")->residual));
  EXPECT_TRUE(testing_json::IsValidJson(inf_report.ToJson()));
}

}  // namespace
}  // namespace spatialjoin
