#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "gridfile/grid_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

class GridFileTest : public ::testing::Test {
 protected:
  GridFileTest() : disk_(512), pool_(&disk_, 256) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(GridFileTest, InsertAndExactSearch) {
  GridFile grid(&pool_, Rectangle(0, 0, 100, 100), 4);
  grid.Insert(Point(10, 10), 1);
  grid.Insert(Point(50, 50), 2);
  grid.Insert(Point(90, 90), 3);
  EXPECT_EQ(grid.num_records(), 3);
  EXPECT_EQ(grid.SearchTids(Rectangle(45, 45, 55, 55)),
            std::vector<TupleId>{2});
  EXPECT_TRUE(grid.SearchTids(Rectangle(20, 20, 30, 30)).empty());
  grid.CheckInvariants();
}

TEST_F(GridFileTest, SplitsOnOverflow) {
  GridFile grid(&pool_, Rectangle(0, 0, 100, 100), 4);
  RectGenerator gen(Rectangle(0, 0, 100, 100), 21);
  for (int i = 0; i < 100; ++i) grid.Insert(gen.NextPoint(), i);
  EXPECT_GT(grid.num_buckets(), 10);
  EXPECT_GT(grid.directory_cells_x() * grid.directory_cells_y(), 4);
  grid.CheckInvariants();
}

TEST_F(GridFileTest, SearchMatchesBruteForce) {
  GridFile grid(&pool_, Rectangle(0, 0, 1000, 1000), 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 33);
  std::vector<Point> data = gen.Points(800);
  for (size_t i = 0; i < data.size(); ++i) {
    grid.Insert(data[i], static_cast<TupleId>(i));
  }
  grid.CheckInvariants();
  for (int q = 0; q < 50; ++q) {
    Rectangle window = gen.NextRect(20, 200);
    std::vector<TupleId> hits = grid.SearchTids(window);
    std::vector<TupleId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (window.ContainsPoint(data[i])) {
        expected.push_back(static_cast<TupleId>(i));
      }
    }
    std::sort(hits.begin(), hits.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hits, expected) << "window " << window.ToString();
  }
}

TEST_F(GridFileTest, SkewedDataStillSplits) {
  GridFile grid(&pool_, Rectangle(0, 0, 1000, 1000), 4);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 55);
  std::vector<Point> data = gen.ClusteredPoints(300, 3, 15.0);
  for (size_t i = 0; i < data.size(); ++i) {
    grid.Insert(data[i], static_cast<TupleId>(i));
  }
  grid.CheckInvariants();
  EXPECT_EQ(grid.num_records(), 300);
  EXPECT_EQ(grid.SearchTids(Rectangle(0, 0, 1000, 1000)).size(), 300u);
}

TEST_F(GridFileTest, DeleteRemovesRecord) {
  GridFile grid(&pool_, Rectangle(0, 0, 10, 10), 4);
  grid.Insert(Point(5, 5), 1);
  grid.Insert(Point(5, 5), 2);  // same point, different tid
  EXPECT_TRUE(grid.Delete(Point(5, 5), 1));
  EXPECT_EQ(grid.SearchTids(Rectangle(4, 4, 6, 6)),
            std::vector<TupleId>{2});
  EXPECT_FALSE(grid.Delete(Point(5, 5), 1));
  EXPECT_FALSE(grid.Delete(Point(1, 1), 2));
  grid.CheckInvariants();
}

TEST_F(GridFileTest, BoundaryPointsIndexed) {
  GridFile grid(&pool_, Rectangle(0, 0, 10, 10), 4);
  grid.Insert(Point(0, 0), 1);
  grid.Insert(Point(10, 10), 2);
  EXPECT_EQ(grid.SearchTids(Rectangle(0, 0, 10, 10)).size(), 2u);
}

}  // namespace
}  // namespace spatialjoin
