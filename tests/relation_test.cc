#include <gtest/gtest.h>

#include <set>

#include "relational/relation.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace spatialjoin {
namespace {

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"area", ValueType::kRectangle}});
}

class RelationTest : public ::testing::Test {
 protected:
  RelationTest() : disk_(2000), pool_(&disk_, 64) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(RelationTest, InsertAssignsDenseTupleIds) {
  Relation rel("t", TestSchema(), &pool_);
  for (int64_t i = 0; i < 10; ++i) {
    TupleId tid = rel.Insert(
        Tuple({Value(i), Value(Rectangle(0, 0, 1, 1))}));
    EXPECT_EQ(tid, i);
  }
  EXPECT_EQ(rel.num_tuples(), 10);
}

TEST_F(RelationTest, ReadReturnsInsertedTuple) {
  Relation rel("t", TestSchema(), &pool_);
  Tuple t({Value(int64_t{5}), Value(Rectangle(1, 2, 3, 4))});
  TupleId tid = rel.Insert(t);
  EXPECT_EQ(rel.Read(tid), t);
  EXPECT_EQ(rel.MbrOf(tid, 1), Rectangle(1, 2, 3, 4));
}

TEST_F(RelationTest, ScanVisitsAllWithCorrectIds) {
  for (RelationLayout layout :
       {RelationLayout::kHeap, RelationLayout::kClustered}) {
    Relation rel("t", TestSchema(), &pool_, layout);
    for (int64_t i = 0; i < 25; ++i) {
      rel.Insert(Tuple({Value(i), Value(Rectangle(0, 0, 1, 1))}));
    }
    std::set<TupleId> seen;
    rel.Scan([&](TupleId tid, const Tuple& tuple) {
      EXPECT_EQ(tuple.value(0).AsInt64(), tid);  // id column mirrors tid
      seen.insert(tid);
    });
    EXPECT_EQ(seen.size(), 25u);
  }
}

TEST_F(RelationTest, PaddedTuplesMatchPaperPageCapacity) {
  // v = 300, s = 2000, l = 0.75 ⇒ m = 5 tuples per page (Table 3).
  Relation rel("t", TestSchema(), &pool_, RelationLayout::kClustered,
               /*pad_tuples_to=*/300, /*fill_factor=*/0.75);
  for (int64_t i = 0; i < 50; ++i) {
    rel.Insert(Tuple({Value(i), Value(Rectangle(0, 0, 1, 1))}));
  }
  EXPECT_EQ(rel.num_pages(), 13);  // ⌈50/4⌉: 4×308 ≤ 1500 < 5×308
  // Consecutive tuples share pages under clustering.
  EXPECT_EQ(rel.PageOf(0), rel.PageOf(1));
}

TEST_F(RelationTest, HeapAndClusteredAgreeLogically) {
  Relation heap("h", TestSchema(), &pool_, RelationLayout::kHeap);
  Relation clustered("c", TestSchema(), &pool_,
                     RelationLayout::kClustered);
  for (int64_t i = 0; i < 30; ++i) {
    Tuple t({Value(i), Value(Rectangle(0, 0, 1.0 + static_cast<double>(i), 1))});
    heap.Insert(t);
    clustered.Insert(t);
  }
  for (int64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(heap.Read(i), clustered.Read(i));
  }
}

TEST_F(RelationTest, ReadCountsIo) {
  Relation rel("t", TestSchema(), &pool_, RelationLayout::kClustered,
               /*pad_tuples_to=*/300);
  for (int64_t i = 0; i < 100; ++i) {
    rel.Insert(Tuple({Value(i), Value(Rectangle(0, 0, 1, 1))}));
  }
  ASSERT_TRUE(pool_.Clear().ok());  // start cold
  int64_t reads_before = disk_.stats().page_reads;
  rel.Read(50);
  EXPECT_EQ(disk_.stats().page_reads, reads_before + 1);
  // Re-reading the same page hits the pool: no extra disk read.
  rel.Read(51);
  rel.Read(50);
  EXPECT_LE(disk_.stats().page_reads, reads_before + 2);
}

}  // namespace
}  // namespace spatialjoin
