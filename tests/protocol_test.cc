// Wire-protocol layer tests (DESIGN.md §12): framing round-trips, the
// decoder's rejection of truncated/oversized/garbage frames, and a
// fuzz-style randomized pass proving the payload decoders never crash or
// over-read on arbitrary bytes (the ASan job runs this suite).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <utility>

#include "core/spatial_join.h"
#include "server/protocol.h"

namespace spatialjoin {
namespace server {
namespace {

// Pulls exactly one frame out of an encoded buffer, asserting the stream
// contains nothing else.
Frame DecodeOne(const std::string& wire) {
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.Feed(wire).ok());
  Frame frame;
  EXPECT_TRUE(decoder.Next(&frame));
  Frame extra;
  EXPECT_FALSE(decoder.Next(&extra));
  return frame;
}

TEST(ProtocolFraming, PingPongRoundTrip) {
  Frame frame = DecodeOne(EncodePing(42));
  EXPECT_EQ(frame.type, static_cast<uint8_t>(MessageType::kPing));
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_TRUE(frame.payload.empty());

  frame = DecodeOne(EncodePong(7));
  EXPECT_EQ(frame.type, static_cast<uint8_t>(MessageType::kPong));
  EXPECT_EQ(frame.request_id, 7u);
}

TEST(ProtocolFraming, SelectRequestRoundTrip) {
  SelectRequest request;
  request.dataset_id = 3;
  request.strategy = SelectStrategy::kParallelTree;
  request.op_code = static_cast<uint8_t>(WireOp::kWithinDistance);
  request.op_param = 12.5;
  request.selector = Rectangle(1.25, -2.5, 30.0, 40.0);
  request.deadline_ns = 5'000'000;

  Frame frame = DecodeOne(EncodeSelectRequest(99, request));
  EXPECT_EQ(frame.type, static_cast<uint8_t>(MessageType::kSelect));
  EXPECT_EQ(frame.request_id, 99u);

  Result<SelectRequest> decoded = DecodeSelectRequest(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().dataset_id, 3u);
  EXPECT_EQ(decoded.value().strategy, SelectStrategy::kParallelTree);
  EXPECT_EQ(decoded.value().op_code,
            static_cast<uint8_t>(WireOp::kWithinDistance));
  EXPECT_DOUBLE_EQ(decoded.value().op_param, 12.5);
  EXPECT_EQ(decoded.value().selector, Rectangle(1.25, -2.5, 30.0, 40.0));
  EXPECT_EQ(decoded.value().deadline_ns, 5'000'000);
}

TEST(ProtocolFraming, JoinRequestRoundTrip) {
  JoinRequest request;
  request.dataset_id = 1;
  request.strategy = JoinStrategy::kParallelTreeJoin;
  request.op_code = static_cast<uint8_t>(WireOp::kOverlaps);
  request.deadline_ns = 0;

  Frame frame = DecodeOne(EncodeJoinRequest(5, request));
  Result<JoinRequest> decoded = DecodeJoinRequest(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().dataset_id, 1u);
  EXPECT_EQ(decoded.value().strategy, JoinStrategy::kParallelTreeJoin);
  EXPECT_EQ(decoded.value().deadline_ns, 0);
}

TEST(ProtocolFraming, CancelRequestRoundTrip) {
  Frame frame = DecodeOne(EncodeCancelRequest(8, CancelRequest{12345}));
  Result<CancelRequest> decoded = DecodeCancelRequest(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().target_request_id, 12345u);
}

TEST(ProtocolFraming, ResultReplyRoundTripPreservesEverything) {
  JoinResult result;
  result.theta_upper_tests = 10;
  result.theta_tests = 20;
  result.nodes_accessed = 30;
  result.qual_pairs_examined = 40;
  result.matches = {{1, 2}, {3, 4}, {-5, 6}};

  Frame frame = DecodeOne(EncodeResultReply(77, result));
  Result<Reply> reply = DecodeReply(static_cast<MessageType>(frame.type),
                                    frame.request_id, frame.payload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().type, MessageType::kResult);
  EXPECT_EQ(reply.value().request_id, 77u);
  EXPECT_EQ(reply.value().result.matches, result.matches);
  EXPECT_EQ(reply.value().result.theta_upper_tests, 10);
  EXPECT_EQ(reply.value().result.theta_tests, 20);
  EXPECT_EQ(reply.value().result.nodes_accessed, 30);
  EXPECT_EQ(reply.value().result.qual_pairs_examined, 40);
}

TEST(ProtocolFraming, ErrorReplyRoundTripAndMessageClamp) {
  Frame frame = DecodeOne(
      EncodeErrorReply(9, Status::NotFound("unknown dataset id")));
  Result<Reply> reply = DecodeReply(MessageType::kError, frame.request_id,
                                    frame.payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().error_code, StatusCode::kNotFound);
  EXPECT_EQ(reply.value().error_message, "unknown dataset id");

  // A pathological message is clamped, not propagated unbounded.
  frame = DecodeOne(
      EncodeErrorReply(9, Status::Internal(std::string(100000, 'x'))));
  reply = DecodeReply(MessageType::kError, frame.request_id, frame.payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().error_message.size(), 1024u);
}

TEST(ProtocolFraming, StatsRequestRoundTrip) {
  Frame frame = DecodeOne(EncodeStatsRequest(11));
  EXPECT_EQ(frame.type, static_cast<uint8_t>(MessageType::kStats));
  EXPECT_EQ(frame.request_id, 11u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(ProtocolFraming, StatsReplyRoundTripPreservesJsonBytes) {
  // The reply is opaque UTF-8 to the protocol layer; arbitrary bytes
  // (embedded quotes, newlines) must survive untouched.
  const std::string json = "{\"a\": 1,\n \"b\": \"x\\\"y\"}";
  Frame frame = DecodeOne(EncodeStatsReply(13, json));
  EXPECT_EQ(frame.type, static_cast<uint8_t>(MessageType::kStatsReply));
  Result<Reply> reply = DecodeReply(MessageType::kStatsReply,
                                    frame.request_id, frame.payload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().type, MessageType::kStatsReply);
  EXPECT_EQ(reply.value().request_id, 13u);
  EXPECT_EQ(reply.value().stats_json, json);
}

TEST(ProtocolValidation, EmptyStatsReplyRejected) {
  EXPECT_FALSE(DecodeReply(MessageType::kStatsReply, 1, "").ok());
}

TEST(ProtocolFraming, ByteAtATimeDeliveryReassembles) {
  SelectRequest request;
  request.op_code = static_cast<uint8_t>(WireOp::kOverlaps);
  request.selector = Rectangle(0, 0, 1, 1);
  const std::string wire =
      EncodeSelectRequest(6, request) + EncodePing(7);

  FrameDecoder decoder;
  Frame frame;
  int frames = 0;
  for (char c : wire) {
    ASSERT_TRUE(decoder.Feed(std::string_view(&c, 1)).ok());
    while (decoder.Next(&frame)) {
      ++frames;
      EXPECT_EQ(frame.request_id, frames == 1 ? 6u : 7u);
    }
  }
  EXPECT_EQ(frames, 2);
  // Everything was consumed; nothing accumulates across frames.
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(ProtocolFraming, TruncatedFrameYieldsNothingAndNoError) {
  const std::string wire = EncodePing(1);
  FrameDecoder decoder;
  ASSERT_TRUE(
      decoder.Feed(std::string_view(wire.data(), wire.size() - 1)).ok());
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_FALSE(decoder.poisoned());  // incomplete, not invalid
}

TEST(ProtocolFraming, BadMagicPoisonsTheStream) {
  std::string wire = EncodePing(1);
  wire[4] = 0x00;  // corrupt the magic byte
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(wire).ok());
  EXPECT_TRUE(decoder.poisoned());
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
}

TEST(ProtocolFraming, OversizedPayloadLengthPoisonsBeforeBuffering) {
  // Header declaring a payload over the limit: rejected from the header
  // alone — the decoder never waits for (or allocates) the payload.
  std::string wire = EncodePing(1);
  wire[0] = static_cast<char>(0xff);
  wire[1] = static_cast<char>(0xff);
  wire[2] = static_cast<char>(0xff);
  wire[3] = static_cast<char>(0x7f);
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(wire).ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ProtocolFraming, NonzeroReservedHeaderBitsPoison) {
  std::string wire = EncodePing(1);
  wire[6] = 1;
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(wire).ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ProtocolFraming, GarbageAfterValidFrameStillDeliversTheValidOne) {
  std::string wire = EncodePing(3);
  wire += std::string(kFrameHeaderBytes, '\xde');  // then garbage
  FrameDecoder decoder;
  (void)decoder.Feed(wire);
  Frame frame;
  EXPECT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.request_id, 3u);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_FALSE(decoder.Next(&frame));
}

TEST(ProtocolValidation, SelectRequestRejectsMalformedPayloads) {
  SelectRequest good;
  good.op_code = static_cast<uint8_t>(WireOp::kOverlaps);
  good.selector = Rectangle(0, 0, 1, 1);
  const std::string frame = EncodeSelectRequest(1, good);
  std::string payload = frame.substr(kFrameHeaderBytes);

  EXPECT_FALSE(DecodeSelectRequest(payload.substr(1)).ok());  // wrong size
  EXPECT_FALSE(DecodeSelectRequest(payload + "x").ok());

  std::string bad = payload;
  bad[6] = 1;  // reserved bits
  EXPECT_FALSE(DecodeSelectRequest(bad).ok());

  bad = payload;
  bad[4] = 99;  // strategy out of range
  EXPECT_FALSE(DecodeSelectRequest(bad).ok());

  // min > max rectangle.
  SelectRequest inverted = good;
  inverted.selector = Rectangle(0, 0, 1, 1);
  std::string wire = EncodeSelectRequest(1, inverted);
  // Swap min_x and max_x fields (offsets 16 and 32 of the payload).
  std::string p = wire.substr(kFrameHeaderBytes);
  for (int i = 0; i < 8; ++i) std::swap(p[16 + i], p[32 + i]);
  EXPECT_FALSE(DecodeSelectRequest(p).ok());
}

TEST(ProtocolValidation, ResultReplyRejectsLengthMismatch) {
  JoinResult result;
  result.matches = {{1, 2}};
  std::string frame = EncodeResultReply(1, result);
  std::string payload = frame.substr(kFrameHeaderBytes);
  // Claim two pairs while carrying bytes for one.
  payload[32] = 2;
  EXPECT_FALSE(DecodeReply(MessageType::kResult, 1, payload).ok());
}

// Boundary frames around the framing limits: payload sizes 0, cap-1,
// cap, and cap+1, the maximum request id, and a zero-pair RESULT. The
// decoder must accept everything up to and including the cap and poison
// the stream one byte past it.
TEST(ProtocolBoundary, EmptyPayloadFrames) {
  Frame frame = DecodeOne(EncodePing(1));
  EXPECT_EQ(frame.payload.size(), 0u);
  frame = DecodeOne(EncodeStatsRequest(2));
  EXPECT_EQ(frame.payload.size(), 0u);
}

TEST(ProtocolBoundary, PayloadAtCapMinusOneAndAtCapRoundTrip) {
  for (size_t size : {static_cast<size_t>(kMaxPayloadBytes) - 1,
                      static_cast<size_t>(kMaxPayloadBytes)}) {
    const std::string json(size, 'j');
    Frame frame = DecodeOne(EncodeStatsReply(21, json));
    EXPECT_EQ(frame.payload.size(), size);
    Result<Reply> reply = DecodeReply(MessageType::kStatsReply,
                                      frame.request_id, frame.payload);
    ASSERT_TRUE(reply.ok()) << size;
    EXPECT_EQ(reply.value().stats_json.size(), size);
  }
}

TEST(ProtocolBoundary, PayloadCapPlusOnePoisonsFromTheHeaderAlone) {
  // Hand-built header declaring kMaxPayloadBytes + 1: one past the
  // exact boundary the eager check guards. No payload bytes follow —
  // rejection must come from the header.
  const uint32_t len = kMaxPayloadBytes + 1;
  std::string wire = EncodePing(1);
  wire[0] = static_cast<char>(len & 0xff);
  wire[1] = static_cast<char>((len >> 8) & 0xff);
  wire[2] = static_cast<char>((len >> 16) & 0xff);
  wire[3] = static_cast<char>((len >> 24) & 0xff);
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(wire).ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ProtocolBoundary, MaxRequestIdSurvivesRoundTrip) {
  const uint64_t id = std::numeric_limits<uint64_t>::max();
  Frame frame = DecodeOne(EncodePing(id));
  EXPECT_EQ(frame.request_id, id);

  JoinResult result;
  result.matches = {{7, 8}};
  frame = DecodeOne(EncodeResultReply(id, result));
  Result<Reply> reply = DecodeReply(static_cast<MessageType>(frame.type),
                                    frame.request_id, frame.payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().request_id, id);
}

TEST(ProtocolBoundary, ZeroPairResultReplyRoundTrips) {
  JoinResult empty;
  empty.theta_tests = 5;
  Frame frame = DecodeOne(EncodeResultReply(3, empty));
  Result<Reply> reply = DecodeReply(MessageType::kResult, frame.request_id,
                                    frame.payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().result.matches.empty());
  EXPECT_EQ(reply.value().result.theta_tests, 5);
}

TEST(ProtocolBoundary, HeaderSplitAtEveryByteReassembles) {
  // Deliver the 16-byte header truncated at every possible split point:
  // the partial header must yield no frame and no poison, and the
  // remainder must complete the frame exactly once.
  const std::string wire = EncodePing(0xABCD);
  for (size_t cut = 1; cut < kFrameHeaderBytes; ++cut) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(std::string_view(wire).substr(0, cut)).ok());
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame)) << cut;
    EXPECT_FALSE(decoder.poisoned()) << cut;
    ASSERT_TRUE(decoder.Feed(std::string_view(wire).substr(cut)).ok());
    ASSERT_TRUE(decoder.Next(&frame)) << cut;
    EXPECT_EQ(frame.request_id, 0xABCDu);
    EXPECT_FALSE(decoder.Next(&frame));
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(ProtocolValidation, MakeWireOperatorCoversTable1AndRejectsJunk) {
  for (uint8_t code = 1; code <= 6; ++code) {
    Result<std::unique_ptr<ThetaOperator>> op = MakeWireOperator(code, 5.0);
    EXPECT_TRUE(op.ok()) << static_cast<int>(code);
  }
  EXPECT_FALSE(MakeWireOperator(0, 1.0).ok());
  EXPECT_FALSE(MakeWireOperator(7, 1.0).ok());
  EXPECT_FALSE(MakeWireOperator(255, 1.0).ok());
  EXPECT_FALSE(
      MakeWireOperator(static_cast<uint8_t>(WireOp::kWithinDistance),
                       std::numeric_limits<double>::quiet_NaN())
          .ok());
  EXPECT_FALSE(
      MakeWireOperator(static_cast<uint8_t>(WireOp::kWithinDistance), -1.0)
          .ok());
}

TEST(ProtocolValidation, IsRequestTypeMatchesTheEnum) {
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MessageType::kPing)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MessageType::kSelect)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MessageType::kJoin)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MessageType::kCancel)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MessageType::kStats)));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(MessageType::kPong)));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(MessageType::kResult)));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(MessageType::kError)));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(MessageType::kStatsReply)));
  EXPECT_FALSE(IsRequestType(0));
  EXPECT_FALSE(IsRequestType(200));
}

// Fuzz-style: random byte strings through every decoder entry point.
// The assertions are "no crash, no hang, no over-read" (ASan enforces
// the memory half); a deterministic seed keeps failures reproducible.
TEST(ProtocolFuzz, RandomBytesNeverCrashTheDecoders) {
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(0, 200);

  for (int round = 0; round < 2000; ++round) {
    std::string bytes(static_cast<size_t>(len(rng)), '\0');
    for (char& c : bytes) c = static_cast<char>(byte(rng));

    FrameDecoder decoder;
    (void)decoder.Feed(bytes);
    Frame frame;
    while (decoder.Next(&frame)) {
      // Any frame that survives framing gets thrown at every payload
      // decoder — none may crash regardless of the type byte.
      (void)DecodeSelectRequest(frame.payload);
      (void)DecodeJoinRequest(frame.payload);
      (void)DecodeCancelRequest(frame.payload);
      (void)DecodeReply(static_cast<MessageType>(frame.type),
                        frame.request_id, frame.payload);
    }
    (void)DecodeSelectRequest(bytes);
    (void)DecodeJoinRequest(bytes);
    (void)DecodeCancelRequest(bytes);
    (void)DecodeReply(MessageType::kResult, 0, bytes);
    (void)DecodeReply(MessageType::kError, 0, bytes);
    (void)DecodeReply(MessageType::kPong, 0, bytes);
    (void)DecodeReply(MessageType::kStatsReply, 0, bytes);
  }
}

// Fuzzing with a *valid-looking* header in front: exercises the payload
// completion path and multi-frame buffers rather than instant poisoning.
TEST(ProtocolFuzz, RandomPayloadsBehindValidHeadersNeverCrash) {
  std::mt19937_64 rng(0xFEED);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(0, 120);
  std::uniform_int_distribution<int> type(0, 255);

  for (int round = 0; round < 2000; ++round) {
    const uint32_t payload_len = static_cast<uint32_t>(len(rng));
    std::string wire;
    wire.push_back(static_cast<char>(payload_len & 0xff));
    wire.push_back(static_cast<char>((payload_len >> 8) & 0xff));
    wire.push_back(static_cast<char>((payload_len >> 16) & 0xff));
    wire.push_back(static_cast<char>((payload_len >> 24) & 0xff));
    wire.push_back(static_cast<char>(kFrameMagic));
    wire.push_back(static_cast<char>(type(rng)));
    wire.push_back(0);
    wire.push_back(0);
    for (int i = 0; i < 8; ++i) wire.push_back(static_cast<char>(byte(rng)));
    for (uint32_t i = 0; i < payload_len; ++i) {
      wire.push_back(static_cast<char>(byte(rng)));
    }

    // Split the wire at a random point to exercise reassembly.
    const size_t cut = wire.size() == 0
                           ? 0
                           : static_cast<size_t>(rng() % wire.size());
    FrameDecoder decoder;
    (void)decoder.Feed(std::string_view(wire).substr(0, cut));
    Frame frame;
    while (decoder.Next(&frame)) {
    }
    (void)decoder.Feed(std::string_view(wire).substr(cut));
    while (decoder.Next(&frame)) {
      (void)DecodeSelectRequest(frame.payload);
      (void)DecodeJoinRequest(frame.payload);
      (void)DecodeCancelRequest(frame.payload);
      (void)DecodeReply(static_cast<MessageType>(frame.type),
                        frame.request_id, frame.payload);
    }
  }
}

}  // namespace
}  // namespace server
}  // namespace spatialjoin
