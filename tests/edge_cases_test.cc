// Degenerate and boundary inputs across the stack: empty relations,
// single tuples, zero-extent geometry, extreme model parameters, and
// operator corner cases. Every component must degrade gracefully, never
// silently wrongly.
#include <gtest/gtest.h>

#include <set>

#include "core/index_nested_loop.h"
#include "core/join.h"
#include "core/join_index.h"
#include "core/memory_gentree.h"
#include "core/nested_loop.h"
#include "core/select.h"
#include "core/sort_merge_zorder.h"
#include "core/theta_ops.h"
#include "costmodel/join_cost.h"
#include "costmodel/select_cost.h"
#include "costmodel/update_cost.h"
#include "quadtree/quadtree.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace spatialjoin {
namespace {

class EdgeCasesTest : public ::testing::Test {
 protected:
  EdgeCasesTest() : disk_(2000), pool_(&disk_, 256) {}

  std::unique_ptr<Relation> EmptyRects(const std::string& name) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    return std::make_unique<Relation>(name, schema, &pool_);
  }

  DiskManager disk_;
  BufferPool pool_;
};

// ---------------------------------------------------------------------------
// Geometry degeneracies.
// ---------------------------------------------------------------------------

TEST_F(EdgeCasesTest, ZeroExtentRectanglesBehave) {
  Rectangle point_rect(5, 5, 5, 5);
  EXPECT_DOUBLE_EQ(point_rect.Area(), 0.0);
  EXPECT_TRUE(point_rect.Overlaps(point_rect));
  EXPECT_TRUE(point_rect.ContainsPoint(Point(5, 5)));
  Rectangle line_rect(0, 3, 10, 3);  // zero height
  EXPECT_TRUE(line_rect.Overlaps(Rectangle(4, 0, 6, 6)));
  EXPECT_DOUBLE_EQ(line_rect.MinDistance(point_rect), 2.0);
  // Degenerate rectangles index and search correctly.
  RTree tree(&pool_, RTreeSplit::kQuadratic, 8);
  tree.Insert(point_rect, 1);
  tree.Insert(line_rect, 2);
  std::vector<TupleId> hits = tree.SearchTids(Rectangle(5, 3, 5, 5));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<TupleId>{1, 2}));
}

TEST_F(EdgeCasesTest, CollinearPolygonCentroidFallsBack) {
  // A degenerate "polygon" with zero area: centroid falls back to the
  // vertex average instead of dividing by zero.
  Polygon degenerate({{0, 0}, {2, 0}, {4, 0}});
  Point c = degenerate.Centroid();
  EXPECT_DOUBLE_EQ(c.x, 2.0);
  EXPECT_DOUBLE_EQ(c.y, 0.0);
  EXPECT_DOUBLE_EQ(degenerate.Area(), 0.0);
}

TEST_F(EdgeCasesTest, TouchingGeometriesCountAsOverlap) {
  OverlapsOp op;
  // Closed semantics at every type combination.
  EXPECT_TRUE(op.Theta(Value(Rectangle(0, 0, 1, 1)),
                       Value(Rectangle(1, 1, 2, 2))));  // corner touch
  EXPECT_TRUE(op.Theta(Value(Point(1, 0.5)),
                       Value(Rectangle(1, 0, 2, 1))));  // point on edge
  Polygon triangle({{0, 0}, {2, 0}, {1, 2}});
  EXPECT_TRUE(op.Theta(Value(Point(1, 0)), Value(triangle)));
}

// ---------------------------------------------------------------------------
// Empty and singleton inputs through the strategies.
// ---------------------------------------------------------------------------

TEST_F(EdgeCasesTest, JoinsWithEmptyRelations) {
  auto empty_r = EmptyRects("r");
  auto empty_s = EmptyRects("s");
  auto one = EmptyRects("one");
  one->Insert(Tuple({Value(int64_t{0}), Value(Rectangle(0, 0, 1, 1))}));
  OverlapsOp op;
  EXPECT_TRUE(NestedLoopJoin(*empty_r, 1, *empty_s, 1, op).matches.empty());
  EXPECT_TRUE(NestedLoopJoin(*empty_r, 1, *one, 1, op).matches.empty());
  EXPECT_TRUE(NestedLoopJoin(*one, 1, *empty_s, 1, op).matches.empty());
  ZGrid grid(Rectangle(0, 0, 10, 10));
  EXPECT_TRUE(
      SortMergeZOrderJoin(*empty_r, 1, *one, 1, op, grid).matches.empty());
  JoinIndex index(&pool_, 100);
  EXPECT_EQ(index.Build(*empty_r, 1, *one, 1, op), 0);
  EXPECT_TRUE(index.Execute(*empty_r, *one).matches.empty());
}

TEST_F(EdgeCasesTest, SelectOnEmptyIndexes) {
  OverlapsOp op;
  Value selector(Rectangle(0, 0, 5, 5));
  // Empty R-tree.
  RTree rtree(&pool_, RTreeSplit::kQuadratic, 8);
  RTreeGenTree rtree_adapter(&rtree, nullptr, 0);
  SelectResult rt = SpatialSelect(selector, rtree_adapter, op);
  EXPECT_TRUE(rt.matching_tuples.empty());
  // Empty quadtree.
  QuadTree quad(Rectangle(0, 0, 10, 10), 4);
  SelectResult qt = SpatialSelect(selector, quad, op);
  EXPECT_TRUE(qt.matching_tuples.empty());
}

TEST_F(EdgeCasesTest, SingleTupleEverywhere) {
  auto r = EmptyRects("r");
  auto s = EmptyRects("s");
  r->Insert(Tuple({Value(int64_t{0}), Value(Rectangle(0, 0, 4, 4))}));
  s->Insert(Tuple({Value(int64_t{0}), Value(Rectangle(2, 2, 6, 6))}));
  OverlapsOp op;
  RTree rtree(&pool_, RTreeSplit::kLinear, 8);
  rtree.Insert(Rectangle(0, 0, 4, 4), 0);
  RTreeGenTree r_tree(&rtree, r.get(), 1);
  JoinResult probe = IndexNestedLoopJoin(r_tree, *s, 1, op);
  ASSERT_EQ(probe.matches.size(), 1u);
  EXPECT_EQ(probe.matches[0], std::make_pair(TupleId{0}, TupleId{0}));
}

// ---------------------------------------------------------------------------
// Identical / duplicated data.
// ---------------------------------------------------------------------------

TEST_F(EdgeCasesTest, ManyIdenticalRectangles) {
  auto r = EmptyRects("r");
  Rectangle same(3, 3, 5, 5);
  for (int64_t i = 0; i < 30; ++i) {
    r->Insert(Tuple({Value(i), Value(same)}));
  }
  RTree rtree(&pool_, RTreeSplit::kQuadratic, 8);
  for (TupleId t = 0; t < 30; ++t) rtree.Insert(same, t);
  rtree.CheckInvariants();
  EXPECT_EQ(rtree.SearchTids(same).size(), 30u);
  // Self-join: every ordered pair matches (30×30).
  OverlapsOp op;
  JoinResult self = NestedLoopJoin(*r, 1, *r, 1, op);
  EXPECT_EQ(self.matches.size(), 900u);
  // Quadtree piles them into one cell and still answers.
  QuadTree quad(Rectangle(0, 0, 10, 10), 6);
  for (TupleId t = 0; t < 30; ++t) quad.Insert(same, t);
  quad.CheckInvariants();
  EXPECT_EQ(quad.SearchTids(same).size(), 30u);
}

// ---------------------------------------------------------------------------
// Generalization-tree corner shapes.
// ---------------------------------------------------------------------------

TEST_F(EdgeCasesTest, RootOnlyTreesJoin) {
  MemoryGenTree a;
  a.AddNode(kInvalidNodeId, Value(Rectangle(0, 0, 2, 2)), 0);
  MemoryGenTree b;
  b.AddNode(kInvalidNodeId, Value(Rectangle(5, 5, 6, 6)), 0);
  OverlapsOp op;
  JoinResult disjoint = TreeJoin(a, b, op);
  EXPECT_TRUE(disjoint.matches.empty());
  JoinResult self = TreeJoin(a, a, op);
  ASSERT_EQ(self.matches.size(), 1u);
}

TEST_F(EdgeCasesTest, DeepChainTree) {
  // A pathological unary chain (every node one child): SELECT must walk
  // it without worklist issues and match at every level.
  MemoryGenTree chain;
  NodeId parent = chain.AddNode(kInvalidNodeId,
                                Value(Rectangle(0, 0, 1024, 1024)), 0);
  for (int64_t depth = 1; depth <= 40; ++depth) {
    double inset = static_cast<double>(depth);
    parent = chain.AddNode(
        parent,
        Value(Rectangle(inset, inset, 1024 - inset, 1024 - inset)), depth);
  }
  EXPECT_EQ(chain.height(), 40);
  OverlapsOp op;
  SelectResult all =
      SpatialSelect(Value(Rectangle(500, 500, 510, 510)), chain, op);
  EXPECT_EQ(all.matching_tuples.size(), 41u);  // every level matches
  SelectResult none =
      SpatialSelect(Value(Rectangle(2000, 2000, 2001, 2001)), chain, op);
  EXPECT_TRUE(none.matching_tuples.empty());
  EXPECT_EQ(none.theta_upper_tests, 1);  // pruned at the root
}

// ---------------------------------------------------------------------------
// Cost model under extreme parameters.
// ---------------------------------------------------------------------------

TEST_F(EdgeCasesTest, CostModelAtSelectivityExtremes) {
  ModelParameters params = PaperParameters();
  for (MatchDistribution dist :
       {MatchDistribution::kUniform, MatchDistribution::kNoLoc,
        MatchDistribution::kHiLoc}) {
    params.p = 0.0;
    SelectCosts zero = ComputeSelectCosts(params, dist);
    EXPECT_GT(zero.c_iib, 0.0);  // root work remains
    EXPECT_TRUE(std::isfinite(zero.c_iia));
    JoinCosts join_zero = ComputeJoinCosts(params, dist);
    EXPECT_TRUE(std::isfinite(join_zero.d_iii));
    params.p = 1.0;
    SelectCosts one = ComputeSelectCosts(params, dist);
    // At p=1 the tree strategies degrade toward exhaustive behavior and
    // stay within a constant of C_I (they touch every node).
    EXPECT_GT(one.c_iia, zero.c_iia);
    EXPECT_TRUE(std::isfinite(one.c_iia));
    JoinCosts join_one = ComputeJoinCosts(params, dist);
    EXPECT_TRUE(std::isfinite(join_one.d_ii_compute));
    EXPECT_GT(join_one.d_ii_compute, join_zero.d_ii_compute);
  }
}

TEST_F(EdgeCasesTest, CostModelTinyTree) {
  ModelParameters params;
  params.n = 1;
  params.k = 2;
  params.h = 1;
  params.p = 0.5;
  params.T = params.N();
  EXPECT_EQ(params.N(), 3);
  UpdateCosts update = ComputeUpdateCosts(params);
  EXPECT_GE(update.u_iia, 0.0);
  SelectCosts select = ComputeSelectCosts(params, MatchDistribution::kHiLoc);
  EXPECT_GT(select.c_iib, 0.0);
  JoinCosts join = ComputeJoinCosts(params, MatchDistribution::kHiLoc);
  EXPECT_TRUE(std::isfinite(join.d_iia));
}

// ---------------------------------------------------------------------------
// Operator corner cases.
// ---------------------------------------------------------------------------

TEST_F(EdgeCasesTest, NorthwestOfSelfIsFalse) {
  NorthwestOfOp op;
  Value v(Point(3, 3));
  EXPECT_FALSE(op.Theta(v, v));
  // But Θ on the identical MBR is true (a box always overlaps its own NW
  // quadrant) — conservatism, not a bug.
  EXPECT_TRUE(op.ThetaUpper(v.Mbr(), v.Mbr()));
}

TEST_F(EdgeCasesTest, WithinDistanceZero) {
  WithinDistanceOp op(0.0);
  EXPECT_TRUE(op.Theta(Value(Point(1, 1)), Value(Point(1, 1))));
  EXPECT_FALSE(op.Theta(Value(Point(1, 1)), Value(Point(1, 1.001))));
  EXPECT_TRUE(op.ThetaUpper(Rectangle(0, 0, 2, 2), Rectangle(2, 2, 3, 3)));
}

TEST_F(EdgeCasesTest, IncludesIsReflexiveContainedInMirrors) {
  IncludesOp includes;
  ContainedInOp contained;
  Value rect(Rectangle(1, 1, 4, 4));
  Value poly(Polygon({{0, 0}, {5, 0}, {5, 5}, {0, 5}}));
  EXPECT_TRUE(includes.Theta(rect, rect));
  EXPECT_TRUE(includes.Theta(poly, poly));
  EXPECT_EQ(includes.Theta(poly, rect), contained.Theta(rect, poly));
  EXPECT_EQ(includes.Theta(rect, poly), contained.Theta(poly, rect));
}

}  // namespace
}  // namespace spatialjoin
