#include <gtest/gtest.h>

#include "audit/theta_audit.h"

// Acceptance run for the Θ-soundness checker (ISSUE): every Table 1
// θ-operator must satisfy θ(a,b) ⇒ Θ(mbr(a),mbr(b)) over at least 10⁵
// randomized geometry pairs per operator, with witness pairs reported on
// failure. The sample mixes points, rectangles, regular n-gons, and
// grid-snapped coordinates so touching/adjacent configurations occur.

namespace spatialjoin {
namespace {

TEST(ThetaSoundnessAcceptance, Table1OperatorsOver100kPairsEach) {
  audit::ThetaSoundnessOptions options;
  options.pairs = 100000;
  options.seed = 20260806;
  audit::AuditReport report = audit::AuditTable1Operators(options);
  EXPECT_EQ(report.error_count(), 0) << report.ToString();
  // Each operator runs ≥ pairs conservativeness checks; 7 operators.
  EXPECT_GE(report.checks_run(), 7 * options.pairs);
  // The sample must actually exercise both θ and Θ for every operator —
  // a coverage warning would mean the soundness claim is vacuous.
  EXPECT_EQ(report.warning_count(), 0) << report.ToString();
}

}  // namespace
}  // namespace spatialjoin
