#include <gtest/gtest.h>

#include <set>

#include "core/index_nested_loop.h"
#include "core/spatial_join.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

// End-to-end fixture: two rectangle relations, R-trees on both, a ZGrid,
// and a prebuilt join index — everything the dispatcher can need.
class StrategiesTest : public ::testing::Test {
 protected:
  StrategiesTest()
      : disk_(2000),
        pool_(&disk_, 2048),
        world_(0, 0, 600, 600),
        grid_(world_) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    r_ = std::make_unique<Relation>("r", schema, &pool_);
    s_ = std::make_unique<Relation>("s", schema, &pool_);
    r_rtree_ = std::make_unique<RTree>(&pool_, RTreeSplit::kQuadratic, 8);
    s_rtree_ = std::make_unique<RTree>(&pool_, RTreeSplit::kQuadratic, 8);
    RectGenerator gen_r(world_, 21);
    RectGenerator gen_s(world_, 22);
    for (int64_t i = 0; i < 250; ++i) {
      Rectangle box_r = gen_r.NextRect(2, 30);
      Rectangle box_s = gen_s.NextRect(2, 30);
      r_rtree_->Insert(box_r, r_->Insert(Tuple({Value(i), Value(box_r)})));
      s_rtree_->Insert(box_s, s_->Insert(Tuple({Value(i), Value(box_s)})));
    }
    r_adapter_ = std::make_unique<RTreeGenTree>(r_rtree_.get(), r_.get(), 1);
    s_adapter_ = std::make_unique<RTreeGenTree>(s_rtree_.get(), s_.get(), 1);
    join_index_ = std::make_unique<JoinIndex>(&pool_, 100);
    OverlapsOp op;
    join_index_->Build(*r_, 1, *s_, 1, op);

    ctx_.r = r_.get();
    ctx_.col_r = 1;
    ctx_.s = s_.get();
    ctx_.col_s = 1;
    ctx_.r_tree = r_adapter_.get();
    ctx_.s_tree = s_adapter_.get();
    ctx_.join_index = join_index_.get();
    ctx_.zgrid = &grid_;
  }

  DiskManager disk_;
  BufferPool pool_;
  Rectangle world_;
  ZGrid grid_;
  std::unique_ptr<Relation> r_;
  std::unique_ptr<Relation> s_;
  std::unique_ptr<RTree> r_rtree_;
  std::unique_ptr<RTree> s_rtree_;
  std::unique_ptr<RTreeGenTree> r_adapter_;
  std::unique_ptr<RTreeGenTree> s_adapter_;
  std::unique_ptr<JoinIndex> join_index_;
  SpatialJoinContext ctx_;
};

TEST_F(StrategiesTest, AllStrategiesAgreeForOverlaps) {
  OverlapsOp op;
  JoinResult baseline = ExecuteJoin(JoinStrategy::kNestedLoop, ctx_, op);
  MatchSet truth = AsSet(baseline);
  EXPECT_FALSE(truth.empty());
  for (JoinStrategy strategy :
       {JoinStrategy::kTreeJoin, JoinStrategy::kIndexNestedLoop,
        JoinStrategy::kSortMergeZOrder, JoinStrategy::kJoinIndex}) {
    JoinResult result = ExecuteJoin(strategy, ctx_, op);
    EXPECT_EQ(AsSet(result), truth) << JoinStrategyName(strategy);
  }
}

TEST_F(StrategiesTest, NonOverlapStrategiesAgreeForDistanceJoin) {
  WithinDistanceOp op(12.0);
  JoinResult baseline = ExecuteJoin(JoinStrategy::kNestedLoop, ctx_, op);
  MatchSet truth = AsSet(baseline);
  for (JoinStrategy strategy :
       {JoinStrategy::kTreeJoin, JoinStrategy::kIndexNestedLoop}) {
    JoinResult result = ExecuteJoin(strategy, ctx_, op);
    EXPECT_EQ(AsSet(result), truth) << JoinStrategyName(strategy);
  }
}

TEST_F(StrategiesTest, IndexNestedLoopPrunesThetaTests) {
  WithinDistanceOp op(10.0);
  JoinResult nl = ExecuteJoin(JoinStrategy::kNestedLoop, ctx_, op);
  JoinResult inl = ExecuteJoin(JoinStrategy::kIndexNestedLoop, ctx_, op);
  EXPECT_EQ(AsSet(nl), AsSet(inl));
  // The index probe must beat |R|·|S| θ evaluations.
  EXPECT_LT(inl.theta_tests, nl.theta_tests);
}

TEST_F(StrategiesTest, SelectStrategiesAgree) {
  OverlapsOp op;
  RectGenerator gen(world_, 99);
  for (int q = 0; q < 5; ++q) {
    Value selector(gen.NextRect(20, 80));
    JoinResult exhaustive = ExecuteSelect(SelectStrategy::kExhaustive, ctx_,
                                          selector, kInvalidTupleId, op);
    // Tree select probes S's generalization tree.
    JoinResult tree = ExecuteSelect(SelectStrategy::kTree, ctx_, selector,
                                    kInvalidTupleId, op);
    EXPECT_EQ(AsSet(exhaustive), AsSet(tree));
  }
}

TEST_F(StrategiesTest, JoinIndexSelectLookup) {
  OverlapsOp op;
  // For a stored R tuple, the join-index lookup answers the selection.
  TupleId selector_tid = 17;
  Value selector = r_->Read(selector_tid).value(1);
  JoinResult lookup = ExecuteSelect(SelectStrategy::kJoinIndexLookup, ctx_,
                                    selector, selector_tid, op);
  JoinResult exhaustive = ExecuteSelect(SelectStrategy::kExhaustive, ctx_,
                                        selector, selector_tid, op);
  EXPECT_EQ(AsSet(lookup), AsSet(exhaustive));
  EXPECT_EQ(lookup.theta_tests, 0);
}

TEST_F(StrategiesTest, NormalizeMatchesSortsAndDedups) {
  JoinResult result;
  result.matches = {{2, 1}, {1, 1}, {2, 1}, {0, 5}};
  NormalizeMatches(&result);
  EXPECT_EQ(result.matches,
            (std::vector<std::pair<TupleId, TupleId>>{
                {0, 5}, {1, 1}, {2, 1}}));
}

TEST_F(StrategiesTest, StrategyNamesAreStable) {
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kNestedLoop), "nested_loop");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kTreeJoin), "tree_join");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kJoinIndex), "join_index");
  EXPECT_STREQ(SelectStrategyName(SelectStrategy::kTree), "tree_select");
}

}  // namespace
}  // namespace spatialjoin
