// Negative-compile fixture: proves the SJ_GUARDED_BY/SJ_REQUIRES
// annotations actually fire under clang -Wthread-safety.
//
// Compiled twice (clang only — the annotations are no-ops elsewhere)
// with -Wthread-safety -Werror=thread-safety:
//   * without -DVIOLATE — must compile (positive control);
//   * with    -DVIOLATE — must NOT compile (WILL_FAIL test): an
//     unlocked write to a guarded field, and a *Locked() helper called
//     without its required mutex.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spatialjoin {

class Account {
 public:
  void Deposit(int amount) SJ_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    DepositLocked(amount);
  }

  void DepositUnsafe(int amount) SJ_EXCLUDES(mu_) {
#ifdef VIOLATE
    balance_ += amount;     // unlocked write to a guarded field
    DepositLocked(amount);  // REQUIRES(mu_) without holding mu_
#else
    MutexLock lock(mu_);
    balance_ += amount;
#endif
  }

 private:
  void DepositLocked(int amount) SJ_REQUIRES(mu_) { balance_ += amount; }

  Mutex mu_;
  int balance_ SJ_GUARDED_BY(mu_) = 0;
};

}  // namespace spatialjoin
