// Negative-compile fixture: proves [[nodiscard]] on Status/Result turns
// a dropped error into a build failure.
//
// Compiled twice by tests/static_analysis/CMakeLists.txt with
// -Werror=unused-result:
//   * without -DVIOLATE — must compile (positive control, so a broken
//     include path can't masquerade as the diagnostic firing);
//   * with    -DVIOLATE — must NOT compile (WILL_FAIL test).
#include "common/status.h"

namespace spatialjoin {

Status MightFail() { return Status::Internal("synthetic"); }

Result<int> MightFailWithValue() { return Result<int>(42); }

void Caller() {
#ifdef VIOLATE
  MightFail();           // dropped Status: must fail the build
  MightFailWithValue();  // dropped Result: must fail the build
#else
  Status s = MightFail();
  if (!s.ok()) s.IgnoreError();  // handled: must compile
  Result<int> r = MightFailWithValue();
  (void)r;
#endif
}

}  // namespace spatialjoin
