#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace spatialjoin {
namespace {

TEST(MutexTest, LockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the mutex is the guard
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  // try_lock on a std::mutex already held by the same thread is UB, so
  // probe from another thread.
  std::atomic<bool> acquired_while_held{true};
  std::thread probe([&mu, &acquired_while_held] {
    acquired_while_held = mu.TryLock();
    if (acquired_while_held) {
      mu.Unlock();
    }
  });
  probe.join();
  EXPECT_FALSE(acquired_while_held);

  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, SatisfiesBasicLockableForStdGuards) {
  // The lowercase spellings exist so std machinery (lock_guard,
  // unique_lock, CondVar's condition_variable_any) can drive the
  // annotated mutex directly.
  Mutex mu;
  {
    std::lock_guard<Mutex> guard(mu);
  }
  {
    std::unique_lock<Mutex> guard(mu);
  }
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexLockTest, ReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
    std::atomic<bool> acquired{true};
    std::thread probe([&mu, &acquired] {
      acquired = mu.TryLock();
      if (acquired) {
        mu.Unlock();
      }
    });
    probe.join();
    EXPECT_FALSE(acquired) << "MutexLock did not hold the mutex";
  }
  EXPECT_TRUE(mu.TryLock()) << "MutexLock did not release on scope exit";
  mu.Unlock();
}

TEST(CondVarTest, WaitWakesOnNotifyWithStandardLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
    observed = 42;
  });

  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, WaitForTimesOutWithLockReacquired) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  MutexLock lock(mu);
  const auto start = std::chrono::steady_clock::now();
  // Nobody notifies: the wait must come back on its own, and `ready`
  // must still be readable — i.e. the lock was reacquired.
  bool notified = true;
  while (!ready) {
    notified = cv.WaitFor(mu, std::chrono::milliseconds(5));
    break;  // single timed probe is enough for the test
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(ready);
  EXPECT_FALSE(notified) << "timeout must report false";
  EXPECT_LT(elapsed, std::chrono::seconds(30)) << "WaitFor never returned";
}

TEST(CondVarTest, WaitForReportsNotifyAsTrue) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool consumer_holds_lock = false;
  bool notified = false;

  std::thread consumer([&] {
    MutexLock lock(mu);
    consumer_holds_lock = true;
    while (!ready) {
      // Generous timeout: a correct notify arrives long before it, so a
      // false here (timeout) is a real failure, not a flake.
      notified = cv.WaitFor(mu, std::chrono::seconds(30));
      if (!notified) break;
    }
  });

  // Wait until the consumer is *inside* WaitFor before notifying: once
  // this thread can take the lock and see the flag, the consumer has
  // already tested `ready` (false then) and atomically released the
  // lock into the wait — the notify cannot race ahead of the wait.
  while (true) {
    MutexLock lock(mu);
    if (consumer_holds_lock) {
      ready = true;
      break;
    }
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_TRUE(notified);
  EXPECT_TRUE(ready);
}

TEST(CondVarTest, WaitUntilPastDeadlineReturnsFalseImmediately) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  MutexLock lock(mu);
  // A deadline already in the past must not block at all; the standard
  // loop shape still re-tests the predicate with the lock held.
  const auto deadline = std::chrono::steady_clock::now();
  bool notified = true;
  while (!ready) {
    notified = cv.WaitUntil(mu, deadline);
    if (!notified) break;  // out of budget — bail with the lock held
  }
  EXPECT_FALSE(notified);
  EXPECT_FALSE(ready);
}

TEST(CondVarTest, WaitUntilWakesOnNotifyBeforeDeadline) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool made_deadline = false;

  std::thread consumer([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    MutexLock lock(mu);
    while (!ready) {
      if (!cv.WaitUntil(mu, deadline)) return;  // timed out: flag unset
    }
    made_deadline = true;
  });

  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_TRUE(made_deadline);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) {
        cv.Wait(mu);
      }
      ++awake;
    });
  }

  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) {
    th.join();
  }
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace spatialjoin
