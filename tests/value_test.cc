#include <gtest/gtest.h>

#include <string>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace spatialjoin {
namespace {

Value RoundTrip(const Value& v) {
  std::string bytes;
  v.SerializeTo(&bytes);
  size_t pos = 0;
  Value back = Value::Deserialize(bytes, &pos);
  EXPECT_EQ(pos, bytes.size());
  return back;
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(Point(1, 2)).AsPoint(), Point(1, 2));
  EXPECT_EQ(Value(Rectangle(0, 0, 1, 1)).AsRectangle(),
            Rectangle(0, 0, 1, 1));
}

TEST(ValueTest, SerializeRoundTripAllTypes) {
  EXPECT_EQ(RoundTrip(Value()), Value());
  EXPECT_EQ(RoundTrip(Value(int64_t{-12345})), Value(int64_t{-12345}));
  EXPECT_EQ(RoundTrip(Value(3.14159)), Value(3.14159));
  EXPECT_EQ(RoundTrip(Value(std::string("hello world"))),
            Value(std::string("hello world")));
  EXPECT_EQ(RoundTrip(Value(Point(1.5, -2.5))), Value(Point(1.5, -2.5)));
  EXPECT_EQ(RoundTrip(Value(Rectangle(-1, -2, 3, 4))),
            Value(Rectangle(-1, -2, 3, 4)));
  Polygon poly({{0, 0}, {2, 0}, {1, 3}});
  EXPECT_EQ(RoundTrip(Value(poly)), Value(poly));
}

TEST(ValueTest, PolylineRoundTripAndMbr) {
  Polyline river({{0, 0}, {5, 2}, {9, 1}});
  Value v(river);
  EXPECT_EQ(v.type(), ValueType::kPolyline);
  EXPECT_EQ(RoundTrip(v), v);
  EXPECT_EQ(v.Mbr(), Rectangle(0, 0, 9, 2));
  EXPECT_EQ(v.AsPolyline().vertices().size(), 3u);
}

TEST(ValueTest, MbrOfSpatialValues) {
  EXPECT_EQ(Value(Point(3, 4)).Mbr(), Rectangle(3, 4, 3, 4));
  EXPECT_EQ(Value(Rectangle(0, 0, 2, 2)).Mbr(), Rectangle(0, 0, 2, 2));
  Polygon tri({{0, 0}, {4, 0}, {2, 5}});
  EXPECT_EQ(Value(tri).Mbr(), Rectangle(0, 0, 4, 5));
}

TEST(SchemaTest, LookupAndSpatialColumns) {
  Schema schema({{"hid", ValueType::kInt64},
                 {"hprice", ValueType::kDouble},
                 {"hlocation", ValueType::kPoint}});
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.IndexOf("hprice"), 1);
  EXPECT_EQ(schema.IndexOf("missing"), -1);
  EXPECT_FALSE(schema.IsSpatial(0));
  EXPECT_TRUE(schema.IsSpatial(2));
  EXPECT_EQ(schema.FirstSpatialColumn(), 2);
  EXPECT_EQ(schema.ToString(), "hid INT64, hprice DOUBLE, hlocation POINT");
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", ValueType::kInt64}});
  Schema b({{"x", ValueType::kInt64}});
  Schema c({{"x", ValueType::kDouble}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TupleTest, ConformanceChecksTypes) {
  Schema schema({{"id", ValueType::kInt64}, {"loc", ValueType::kPoint}});
  EXPECT_TRUE(Tuple({Value(int64_t{1}), Value(Point(0, 0))})
                  .Conforms(schema));
  EXPECT_TRUE(Tuple({Value(), Value(Point(0, 0))}).Conforms(schema));
  EXPECT_FALSE(Tuple({Value(1.0), Value(Point(0, 0))}).Conforms(schema));
  EXPECT_FALSE(Tuple({Value(int64_t{1})}).Conforms(schema));
}

TEST(TupleTest, SerializeRoundTrip) {
  Tuple t({Value(int64_t{9}), Value("label"), Value(Point(7, 8))});
  std::string bytes = t.Serialize();
  Tuple back = Tuple::Deserialize(bytes, 3);
  EXPECT_EQ(back, t);
}

TEST(TupleTest, PaddingToFixedSize) {
  Tuple t({Value(int64_t{1})});
  std::string bytes = t.Serialize(300);
  EXPECT_EQ(bytes.size(), 300u);  // the paper's v = 300 tuple size
  Tuple back = Tuple::Deserialize(bytes, 1);
  EXPECT_EQ(back, t);
}

TEST(TupleTest, ConcatJoinsValues) {
  Tuple a({Value(int64_t{1}), Value("x")});
  Tuple b({Value(2.0)});
  Tuple joined = Tuple::Concat(a, b);
  EXPECT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined.value(0).AsInt64(), 1);
  EXPECT_EQ(joined.value(2).AsDouble(), 2.0);
}

}  // namespace
}  // namespace spatialjoin
