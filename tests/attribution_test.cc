// Per-query resource attribution tests (DESIGN.md §13).
//
// The contract under test is *exactness*: with every charging call site
// inside some query's scope, charges are neither lost nor double-counted
// — each query's sink accumulates precisely its own work, at any worker
// count, even when the work-stealing pool migrates that query's tasks
// across threads. The property test sweeps 1/2/4/8 workers with
// concurrent mixed queries and asserts per-query sums are exact and that
// their total matches the global buffer-pool counters' deltas.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace spatialjoin {
namespace {

using attribution::Charges;
using attribution::ChargePagesHit;
using attribution::ChargePagesRead;
using attribution::ChargePairsExamined;
using attribution::ChargeQualPairs;
using attribution::CurrentCharges;
using attribution::QueryCharges;
using attribution::QueryChargeScope;

TEST(AttributionScope, HooksAreNoOpsWithoutAScope) {
  ASSERT_EQ(CurrentCharges(), nullptr);
  // Nothing to observe beyond "does not crash": no sink, no charge.
  ChargePagesRead();
  ChargePairsExamined(100);

  QueryCharges charges;
  {
    QueryChargeScope scope(&charges);
    ASSERT_EQ(CurrentCharges(), &charges);
    ChargePagesRead();
  }
  EXPECT_EQ(CurrentCharges(), nullptr);
  // The charge inside the scope landed; the ones outside did not.
  EXPECT_EQ(charges.Snapshot().pages_read, 1);
  EXPECT_EQ(charges.Snapshot().pairs_examined, 0);
}

TEST(AttributionScope, ScopesNestAndRestore) {
  QueryCharges outer;
  QueryCharges inner;
  QueryChargeScope outer_scope(&outer);
  ChargePagesHit();
  {
    QueryChargeScope inner_scope(&inner);
    ChargePagesHit();
    ChargePagesHit();
    {
      // Null suspends attribution entirely.
      QueryChargeScope off(nullptr);
      ASSERT_EQ(CurrentCharges(), nullptr);
      ChargePagesHit();
    }
    ASSERT_EQ(CurrentCharges(), &inner);
  }
  ASSERT_EQ(CurrentCharges(), &outer);
  ChargePagesHit();
  EXPECT_EQ(outer.Snapshot().pages_hit, 2);
  EXPECT_EQ(inner.Snapshot().pages_hit, 2);
}

// The load-bearing property: N concurrent queries over a shared
// work-stealing pool, each charging a deterministic amount from inside
// ParallelFor bodies (which the pool may run on any worker, steal, or
// help along from the waiting caller). Every query's sink must end up
// with exactly its own totals — no losses, no cross-query bleed — at
// every worker count.
TEST(AttributionProperty, ExactAndNonLeakingAcrossWorkerCounts) {
  for (int workers : {1, 2, 4, 8}) {
    exec::ThreadPool pool(workers);
    constexpr int kQueries = 6;

    std::vector<std::unique_ptr<QueryCharges>> sinks;
    for (int q = 0; q < kQueries; ++q) {
      sinks.push_back(std::make_unique<QueryCharges>());
    }

    // Each "query" runs on its own client thread (the service pattern:
    // one completion closure per query installs the scope, then fans out
    // intra-query work on the shared pool). Mixed sizes so queries
    // overlap unevenly and stealing actually happens.
    std::vector<std::thread> clients;
    for (int q = 0; q < kQueries; ++q) {
      clients.emplace_back([&pool, &sinks, q] {
        const int64_t n = 64 + 32 * q;  // per-query work items
        QueryChargeScope scope(sinks[static_cast<size_t>(q)].get());
        pool.ParallelFor(n, [](int64_t i) {
          ChargePagesRead();
          ChargePagesHit(2);
          ChargePairsExamined(i + 1);
          ChargeQualPairs(1);
        });
      });
    }
    for (std::thread& t : clients) t.join();

    for (int q = 0; q < kQueries; ++q) {
      const int64_t n = 64 + 32 * q;
      const Charges got = sinks[static_cast<size_t>(q)]->Snapshot();
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " query=" + std::to_string(q));
      EXPECT_EQ(got.pages_read, n);
      EXPECT_EQ(got.pages_hit, 2 * n);
      EXPECT_EQ(got.pairs_examined, n * (n + 1) / 2);
      EXPECT_EQ(got.qual_pairs, n);
      EXPECT_GE(got.queue_wait_ns, 0);
      EXPECT_GE(got.pool_tasks, 0);
    }
  }
}

// Fire-and-forget propagation: TaskGroup::Spawn must carry the
// submitting thread's sink onto the spawned task — including tasks
// spawned *by* spawned tasks — and count each wrapped task exactly once.
TEST(AttributionProperty, TaskGroupPropagatesAndCountsTasks) {
  exec::ThreadPool pool(4);
  constexpr int kOuter = 8;
  constexpr int kInnerPerOuter = 4;

  QueryCharges charges;
  {
    QueryChargeScope scope(&charges);
    exec::ThreadPool::TaskGroup outer(&pool);
    std::atomic<int> pending_inner{kOuter};
    exec::ThreadPool::TaskGroup inner(&pool);
    for (int i = 0; i < kOuter; ++i) {
      outer.Spawn([&inner, &pending_inner] {
        ChargeQualPairs(1);
        for (int j = 0; j < kInnerPerOuter; ++j) {
          inner.Spawn([] { ChargePagesRead(); });
        }
        pending_inner.fetch_sub(1);
      });
    }
    outer.Wait();
    ASSERT_EQ(pending_inner.load(), 0);
    inner.Wait();
  }

  const Charges got = charges.Snapshot();
  EXPECT_EQ(got.qual_pairs, kOuter);
  EXPECT_EQ(got.pages_read, kOuter * kInnerPerOuter);
  // Every spawned task ran under the propagated sink and was counted
  // exactly once by the pool's wrapper.
  EXPECT_EQ(got.pool_tasks, kOuter + kOuter * kInnerPerOuter);
}

// A query that does nothing must be charged nothing, even while other
// queries hammer the same pool from other threads (the "non-leaking"
// half of the exactness contract, seen from the idle side).
TEST(AttributionProperty, IdleQueryIsChargedNothing) {
  exec::ThreadPool pool(4);
  QueryCharges busy;
  QueryCharges idle;

  QueryChargeScope idle_scope(&idle);  // main thread: idle query
  std::thread worker([&pool, &busy] {
    QueryChargeScope scope(&busy);
    pool.ParallelFor(256, [](int64_t) {
      ChargePagesRead();
      ChargePairsExamined(3);
    });
  });
  worker.join();

  const Charges idle_got = idle.Snapshot();
  EXPECT_EQ(idle_got.pages_read, 0);
  EXPECT_EQ(idle_got.pages_hit, 0);
  EXPECT_EQ(idle_got.pairs_examined, 0);
  EXPECT_EQ(idle_got.qual_pairs, 0);
  EXPECT_EQ(idle_got.pool_tasks, 0);
  EXPECT_EQ(busy.Snapshot().pages_read, 256);
}

// End-to-end through a real charging call site: BufferPool hit/miss
// hooks. Per-query charges must equal the pool's own stats deltas AND
// the global registry counters' deltas — the attribution layer is a
// decomposition of the global aggregates, not a parallel bookkeeping
// that can drift.
TEST(AttributionProperty, BufferPoolChargesMatchGlobalCounters) {
  DiskManager disk(64);
  BufferPool pool(&disk, 8);  // small capacity: forces real misses
  std::vector<PageId> pages;
  for (int i = 0; i < 16; ++i) pages.push_back(pool.NewPage());
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();

  Counter* global_hits =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.hits");
  Counter* global_misses =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.misses");
  const int64_t hits_before = global_hits->Value();
  const int64_t misses_before = global_misses->Value();

  QueryCharges charges;
  {
    QueryChargeScope scope(&charges);
    // Two sweeps over 16 pages through an 8-frame pool: every access
    // misses (LRU thrashing); then re-touch the resident half for hits.
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (PageId id : pages) ASSERT_NE(pool.GetPage(id), nullptr);
    }
    std::vector<BufferPool::FrameInfo> resident = pool.ResidentFrames();
    for (const BufferPool::FrameInfo& frame : resident) {
      ASSERT_NE(pool.GetPage(frame.id), nullptr);
    }
  }

  const Charges got = charges.Snapshot();
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(got.pages_read, stats.misses);
  EXPECT_EQ(got.pages_hit, stats.hits);
  EXPECT_GT(got.pages_read, 0);
  EXPECT_GT(got.pages_hit, 0);
  // The same accesses flowed into the cumulative global counters; the
  // per-query view decomposes exactly those deltas. (Single-threaded
  // here, so no other test's accesses can interleave: gtest runs tests
  // in one process sequentially.)
  EXPECT_EQ(got.pages_read, global_misses->Value() - misses_before);
  EXPECT_EQ(got.pages_hit, global_hits->Value() - hits_before);
}

}  // namespace
}  // namespace spatialjoin
