#include <gtest/gtest.h>

#include <set>

#include "core/join_index.h"
#include "core/nested_loop.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

class JoinIndexTest : public ::testing::Test {
 protected:
  JoinIndexTest() : disk_(2000), pool_(&disk_, 1024) {}

  std::unique_ptr<Relation> MakeRects(const std::string& name, int count,
                                      uint64_t seed) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    auto rel = std::make_unique<Relation>(name, schema, &pool_);
    RectGenerator gen(Rectangle(0, 0, 500, 500), seed);
    for (int64_t i = 0; i < count; ++i) {
      rel->Insert(Tuple({Value(i), Value(gen.NextRect(2, 30))}));
    }
    return rel;
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(JoinIndexTest, BuildThenExecuteMatchesGroundTruth) {
  auto r = MakeRects("r", 200, 1);
  auto s = MakeRects("s", 200, 2);
  OverlapsOp op;
  JoinIndex index(&pool_, /*entries_per_page=*/100);
  int64_t tests = index.Build(*r, 1, *s, 1, op);
  EXPECT_EQ(tests, 200 * 200);  // precomputation is exhaustive
  JoinResult from_index = index.Execute(*r, *s);
  JoinResult ground_truth = NestedLoopJoin(*r, 1, *s, 1, op);
  EXPECT_EQ(AsSet(from_index), AsSet(ground_truth));
  // Query-time θ work is zero — that is the strategy's selling point.
  EXPECT_EQ(from_index.theta_tests, 0);
  EXPECT_EQ(index.num_pairs(),
            static_cast<int64_t>(ground_truth.matches.size()));
}

TEST_F(JoinIndexTest, LookupBothDirections) {
  auto r = MakeRects("r", 50, 3);
  auto s = MakeRects("s", 50, 4);
  OverlapsOp op;
  JoinIndex index(&pool_, 100);
  index.Build(*r, 1, *s, 1, op);
  JoinResult ground_truth = NestedLoopJoin(*r, 1, *s, 1, op);
  MatchSet truth = AsSet(ground_truth);
  for (TupleId r_tid = 0; r_tid < 50; ++r_tid) {
    for (TupleId s_tid : index.SMatchesOf(r_tid)) {
      EXPECT_TRUE(truth.count({r_tid, s_tid}));
    }
  }
  for (TupleId s_tid = 0; s_tid < 50; ++s_tid) {
    for (TupleId r_tid : index.RMatchesOf(s_tid)) {
      EXPECT_TRUE(truth.count({r_tid, s_tid}));
    }
  }
  // Totals agree with the match count in both directions.
  int64_t fwd = 0, bwd = 0;
  for (TupleId t = 0; t < 50; ++t) {
    fwd += static_cast<int64_t>(index.SMatchesOf(t).size());
    bwd += static_cast<int64_t>(index.RMatchesOf(t).size());
  }
  EXPECT_EQ(fwd, static_cast<int64_t>(truth.size()));
  EXPECT_EQ(bwd, static_cast<int64_t>(truth.size()));
}

TEST_F(JoinIndexTest, MaintenanceOnInsert) {
  auto r = MakeRects("r", 40, 5);
  auto s = MakeRects("s", 40, 6);
  OverlapsOp op;
  JoinIndex index(&pool_, 100);
  index.Build(*r, 1, *s, 1, op);

  // Insert a new R tuple covering the middle of the world.
  Rectangle new_box(200, 200, 300, 300);
  TupleId new_r = r->Insert(
      Tuple({Value(int64_t{40}), Value(new_box)}));
  int64_t tests = index.OnInsertR(new_r, Value(new_box), *s, 1, op);
  EXPECT_EQ(tests, s->num_tuples());  // the paper's U_III: test all of S

  JoinResult from_index = index.Execute(*r, *s);
  JoinResult ground_truth = NestedLoopJoin(*r, 1, *s, 1, op);
  EXPECT_EQ(AsSet(from_index), AsSet(ground_truth));
}

TEST_F(JoinIndexTest, RemovePair) {
  auto r = MakeRects("r", 30, 7);
  auto s = MakeRects("s", 30, 8);
  OverlapsOp op;
  JoinIndex index(&pool_, 100);
  index.Build(*r, 1, *s, 1, op);
  ASSERT_GT(index.num_pairs(), 0);
  JoinResult before = index.Execute(*r, *s);
  auto victim = before.matches.front();
  EXPECT_TRUE(index.Remove(victim.first, victim.second));
  EXPECT_FALSE(index.Remove(victim.first, victim.second));
  JoinResult after = index.Execute(*r, *s);
  EXPECT_EQ(after.matches.size(), before.matches.size() - 1);
  EXPECT_FALSE(AsSet(after).count(victim));
}

TEST_F(JoinIndexTest, ExecutePaysTupleFetchIo) {
  auto r = MakeRects("r", 150, 9);
  auto s = MakeRects("s", 150, 10);
  OverlapsOp op;
  JoinIndex index(&pool_, 100);
  index.Build(*r, 1, *s, 1, op);
  ASSERT_TRUE(pool_.Clear().ok());
  int64_t reads_before = disk_.stats().page_reads;
  JoinResult result = index.Execute(*r, *s);
  int64_t reads = disk_.stats().page_reads - reads_before;
  EXPECT_GT(reads, 0);  // index pages + matching tuples were fetched
  EXPECT_EQ(result.nodes_accessed,
            2 * static_cast<int64_t>(result.matches.size()));
}

}  // namespace
}  // namespace spatialjoin
