// Fixture: a reply path that holds the connection mutex across the
// raw ::send — the exact shape of the session.cc bug this checker was
// built to catch. Must fire lock-blocking-call.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

long send(int fd, const void* buf, unsigned long len, int flags);

struct Conn {
  Mutex mu_;
  int fd_;
  void Reply(const char* data, unsigned long len);
};

void Conn::Reply(const char* data, unsigned long len) {
  MutexLock lock(mu_);
  send(fd_, data, len, 0);
}
