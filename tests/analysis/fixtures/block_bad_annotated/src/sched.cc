// Fixture: PostTask has no visible blocking leaf, but its SJ_BLOCKING
// contract says it may park the caller (queue backpressure). Calling
// it with the scheduler mutex held must fire lock-blocking-call.
#define SJ_BLOCKING

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

SJ_BLOCKING void PostTask(int task) {
  static_cast<void>(task);
}

struct Scheduler {
  Mutex mu_;
  int next_;
  void Kick();
};

void Scheduler::Kick() {
  MutexLock lock(mu_);
  PostTask(next_);
}
