// Fixture: a decoder marked SJ_UNTRUSTED returns a wire-derived count
// that flows straight into resize and a container index — the
// wire-taint checker must report both sinks.
#define SJ_UNTRUSTED
#include <vector>

SJ_UNTRUSTED unsigned ReadWireU32(const char* p) {
  return static_cast<unsigned char>(p[0]);
}

void DecodePairs(const char* payload, std::vector<int>& out) {
  unsigned count = ReadWireU32(payload);
  out.resize(count);
}

int PickEntry(const char* payload, std::vector<int>& table) {
  unsigned index = ReadWireU32(payload);
  return table.at(index);
}
