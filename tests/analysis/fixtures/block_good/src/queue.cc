// Fixture: two lawful patterns the checker must NOT flag. Take waits
// on a CondVar that atomically releases the mutex it is handed (the
// intended protocol), and Publish closes the lock scope before its
// send.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct CondVar {
  void Wait(Mutex& mu);
};

void CondVar::Wait(Mutex& mu) {
  static_cast<void>(mu);
  wait_until();
}

long send(int fd, const void* buf, unsigned long len, int flags);

struct Queue {
  Mutex mu_;
  CondVar cv_;
  bool empty_;
  int fd_;
  int head_;
  int Take();
  void Publish(const char* data, unsigned long len);
};

int Queue::Take() {
  MutexLock lock(mu_);
  while (empty_) {
    cv_.Wait(mu_);
  }
  return head_;
}

void Queue::Publish(const char* data, unsigned long len) {
  {
    MutexLock lock(mu_);
    head_ = static_cast<int>(len);
  }
  send(fd_, data, len, 0);
}
