// Fixture: loops exist but no QueryScheduler dispatch definition does
// — the checker must report cancel-no-root instead of silently
// covering nothing.
struct Cursor {
  bool Valid() const;
  void Advance();
};

void RunQuery(Cursor* cursor) {
  while (cursor->Valid()) {
    cursor->Advance();
  }
}
