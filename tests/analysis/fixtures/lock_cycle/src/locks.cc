// Fixture: two functions acquire the same pair of mutexes in opposite
// orders — a classic ABBA deadlock the acquired-while-held graph must
// report as a cycle.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct Pair {
  Mutex a;
  Mutex b;
};

void LockAB(Pair& p) {
  MutexLock first(p.a);
  MutexLock second(p.b);
}

void LockBA(Pair& p) {
  MutexLock first(p.b);
  MutexLock second(p.a);
}
