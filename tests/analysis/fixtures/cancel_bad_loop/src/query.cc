// Fixture: QueryScheduler::Submit dispatches RunQuery, whose scan loop
// neither polls the CancelToken nor carries an SJ_BOUNDED_WORK marker
// — cancel-unpolled-loop must fire on that loop.
struct CancelToken {
  bool ShouldStop() const;
};

struct Cursor {
  bool Valid() const;
  void Advance();
};

void RunQuery(Cursor* cursor) {
  while (cursor->Valid()) {
    cursor->Advance();
  }
}

struct QueryScheduler {
  Cursor* cursor_;
  void Submit();
};

void QueryScheduler::Submit() {
  RunQuery(cursor_);
}
