// Fixture: the blocking leaf (fwrite) is buried two calls below the
// lock site — the blocking-under-lock checker must carry the blocking
// witness up through AppendRecord into Commit.
#include <cstdio>

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct Journal {
  Mutex mu_;
  std::FILE* file_;
  void AppendRecord(const char* data, unsigned long len);
  void Flush();
  void Commit(const char* data, unsigned long len);
};

void Journal::AppendRecord(const char* data, unsigned long len) {
  std::fwrite(data, 1, len, file_);
}

void Journal::Flush() {
  std::fflush(file_);
}

void Journal::Commit(const char* data, unsigned long len) {
  MutexLock lock(mu_);
  AppendRecord(data, len);
  Flush();
}
