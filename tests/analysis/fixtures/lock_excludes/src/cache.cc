// Fixture: Tick() holds mu_ and calls Flush(), whose declaration says
// SJ_EXCLUDES(mu_) — a self-deadlock the excludes check must catch even
// though the annotation sits on the prototype, not the definition.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

#define SJ_EXCLUDES(x)

struct Cache {
  Mutex mu_;
  void Flush() SJ_EXCLUDES(mu_);
  void Tick();
};

void Cache::Flush() {
  MutexLock lock(mu_);
}

void Cache::Tick() {
  MutexLock lock(mu_);
  Flush();
}
