// Fixture: every loop reachable from dispatch is covered one of the
// three lawful ways — a direct ShouldStop poll, a call into a
// transitively-polling helper, or an SJ_BOUNDED_WORK marker. The
// checker must stay silent.
#define SJ_BOUNDED_WORK static_cast<void>(0)

struct CancelToken {
  bool ShouldStop() const;
};

struct Cursor {
  bool Valid() const;
  void Advance();
};

void PollingScan(Cursor* cursor, const CancelToken* cancel) {
  while (cursor->Valid()) {
    if (cancel->ShouldStop()) break;
    cursor->Advance();
  }
}

void DriveScan(Cursor* cursor, const CancelToken* cancel) {
  while (cursor->Valid()) {
    PollingScan(cursor, cancel);
  }
}

void Repack(int* dst, const int* src, int count) {
  for (int i = 0; i < count; ++i) {
    SJ_BOUNDED_WORK;  // one result batch; the scan loop above polls
    dst[i] = src[i];
  }
}

struct QueryScheduler {
  Cursor* cursor_;
  CancelToken* cancel_;
  int buf_[8];
  void Submit();
};

void QueryScheduler::Submit() {
  DriveScan(cursor_, cancel_);
  Repack(buf_, buf_, 8);
}
