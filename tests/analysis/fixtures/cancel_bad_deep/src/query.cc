// Fixture: the unpolled loop sits three calls below the dispatch root
// (Submit -> Execute -> ScanPartition -> DrainRun). The checker must
// walk the closure and attribute the loop with its call chain.
struct CancelToken {
  bool ShouldStop() const;
};

struct Run {
  bool More() const;
  void Next();
};

void DrainRun(Run* run) {
  while (run->More()) {
    run->Next();
  }
}

void ScanPartition(Run* run) {
  DrainRun(run);
}

void Execute(Run* run) {
  ScanPartition(run);
}

struct QueryScheduler {
  Run* run_;
  void Submit();
};

void QueryScheduler::Submit() {
  Execute(run_);
}
