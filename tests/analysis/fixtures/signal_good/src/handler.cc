// Fixture: a handler that stays inside the async-signal-safe allowlist
// (raw write(2), lock-free atomics). Must produce zero findings, and the
// reachability dump must show the transitive callee.
#include <atomic>
#include <csignal>
#include <unistd.h>

std::atomic<int> g_fatal_count{0};

void EmitBanner() {
  const char msg[] = "fatal signal\n";
  write(2, msg, sizeof(msg) - 1);
  g_fatal_count.fetch_add(1);
}

void GoodHandler(int signo) {
  (void)signo;
  EmitBanner();
}

void Install() {
  struct sigaction sa;
  sa.sa_handler = &GoodHandler;
  sigaction(SIGSEGV, &sa, nullptr);
}
