// Fixture: an SJ_HOT function that allocates, locks, throws, and makes a
// virtual call, plus a transitive allocation through a helper. The
// purity checker must report all five.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

#define SJ_HOT

Mutex g_mu;

struct Shape {
  virtual double Area() const;
};

SJ_HOT double HotKernel(const Shape& shape) {
  int* scratch = new int[8];
  MutexLock lock(g_mu);
  if (scratch == nullptr) throw 1;
  return shape.Area();
}

int* GrowBuffer() {
  return new int[16];
}

SJ_HOT int* HotViaHelper() {
  return GrowBuffer();
}
