// Fixture: the untrusted decoder writes the count through an
// out-parameter, a forwarding helper returns it, and the caller feeds
// it to reserve. Taint must survive the out-param write AND the
// helper's return-value summary.
#define SJ_UNTRUSTED
#include <vector>

SJ_UNTRUSTED void ReadHeader(const char* p, unsigned* count_out) {
  *count_out = static_cast<unsigned char>(p[0]);
}

unsigned PairCount(const char* p) {
  unsigned n = 0;
  ReadHeader(p, &n);
  return n;
}

void BuildTable(const char* payload, std::vector<int>& rows) {
  unsigned n = PairCount(payload);
  rows.reserve(n);
}
