// Fixture: pure SJ_HOT arithmetic, including a call into another pure
// function — the control the purity checker must pass.
#define SJ_HOT

SJ_HOT inline double Dot(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

SJ_HOT double NormSquared(const double* a, int n) {
  return Dot(a, a, n);
}
