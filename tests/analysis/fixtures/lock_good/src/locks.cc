// Fixture: consistent two-level hierarchy (Outer::mu_ then Inner::mu_,
// always in that order) — the lock-order checker must stay silent under
// --order "Outer::mu_,Inner::mu_".
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct Inner {
  Mutex mu_;
  void Touch();
};

void Inner::Touch() {
  MutexLock lock(mu_);
}

struct Outer {
  Mutex mu_;
  Inner* inner_;
  void Update();
};

void Outer::Update() {
  MutexLock lock(mu_);
  inner_->Touch();
}
