// Fixture: no SJ_UNTRUSTED function anywhere — the checker must report
// wire-taint-no-source instead of silently covering nothing.
#include <vector>

unsigned ReadLocalU32(const char* p) {
  return static_cast<unsigned char>(p[0]);
}

void DecodePairs(const char* payload, std::vector<int>& out) {
  out.resize(ReadLocalU32(payload));
}
