// Fixture: the SJ_BOUNDED_WORK marker sits in the INNER loop, so it
// claims only that loop — the unbounded outer sweep must still fire.
#define SJ_BOUNDED_WORK static_cast<void>(0)

struct CancelToken {
  bool ShouldStop() const;
};

struct Node {
  Node* next;
  bool pending;
  void Emit();
};

void Sweep(Node* head) {
  while (head != nullptr) {
    while (head->pending) {
      SJ_BOUNDED_WORK;  // claims only this inner drain loop
      head->Emit();
    }
    head = head->next;
  }
}

struct QueryScheduler {
  Node* head_;
  void Submit();
};

void QueryScheduler::Submit() {
  Sweep(head_);
}
