// Fixture: a fatal-signal handler whose call graph breaks every
// signal-safety rule. sj_analyze_test.py asserts each one fires.
#include <csignal>
#include <cstdio>

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

Mutex g_mu;
int* g_scratch = nullptr;

// Reached transitively from the handler: the allocation must still be
// attributed (signal-alloc) even though the handler itself is clean.
void GrowScratch() {
  g_scratch = new int[64];
}

void BadHandler(int signo) {
  GrowScratch();
  MutexLock lock(g_mu);
  std::fprintf(stderr, "signal %d\n", signo);
}

void Install() {
  struct sigaction sa;
  sa.sa_handler = &BadHandler;
  sigaction(SIGSEGV, &sa, nullptr);
}
