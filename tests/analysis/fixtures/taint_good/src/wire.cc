// Fixture: the same wire-derived flows as the taint_bad fixtures, but
// every value passes an SJ_VALIDATES sanitizer before reaching a sink
// — the checker must stay silent.
#define SJ_UNTRUSTED
#define SJ_VALIDATES
#include <cstring>
#include <vector>

SJ_UNTRUSTED unsigned ReadWireU32(const char* p) {
  return static_cast<unsigned char>(p[0]);
}

SJ_VALIDATES unsigned ClampCount(unsigned raw) {
  return raw > 64 ? 64 : raw;
}

void CopyInto(char* dst, const char* src, unsigned len) {
  std::memcpy(dst, src, len);
}

void DecodePairs(const char* payload, std::vector<int>& out) {
  unsigned raw = ReadWireU32(payload);
  unsigned count = ClampCount(raw);
  out.resize(count);
}

void HandleFrame(const char* payload) {
  char buf[128];
  unsigned len = ClampCount(ReadWireU32(payload));
  CopyInto(buf, payload, len);
}
