// Fixture: the tainted length never touches a sink in the function
// that produced it — it is handed to a helper whose memcpy is the
// sink. The interprocedural summary must attribute the finding through
// the helper ("via CopyInto").
#define SJ_UNTRUSTED
#include <cstring>

SJ_UNTRUSTED unsigned ReadWireU32(const char* p) {
  return static_cast<unsigned char>(p[0]);
}

void CopyInto(char* dst, const char* src, unsigned len) {
  std::memcpy(dst, src, len);
}

void HandleFrame(const char* payload) {
  char buf[16];
  unsigned len = ReadWireU32(payload);
  CopyInto(buf, payload, len);
}
