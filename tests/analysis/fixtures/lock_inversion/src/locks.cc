// Fixture: an interprocedural acquisition against the documented order.
// The test runs sj_analyze with --order "BufferPool::mu_,DiskManager::mu_";
// Compact() acquires BufferPool::mu_ (through Evict) while holding
// DiskManager::mu_, which inverts that hierarchy.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct BufferPool {
  Mutex mu_;
  void Evict();
};

void BufferPool::Evict() {
  MutexLock lock(mu_);
}

struct DiskManager {
  Mutex mu_;
  BufferPool* pool_;
  void Compact();
};

void DiskManager::Compact() {
  MutexLock lock(mu_);
  pool_->Evict();
}
