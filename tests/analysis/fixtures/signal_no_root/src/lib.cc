// Fixture: no sigaction installation anywhere. The signal-safety checker
// must report signal-no-root instead of silently covering nothing.
int Add(int a, int b) {
  return a + b;
}
