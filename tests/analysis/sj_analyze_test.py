#!/usr/bin/env python3
"""Self-tests for scripts/analysis/sj_analyze.py.

Each checker is exercised both ways: it must fire on a known-bad fixture
and stay silent on the matching control. The last tests run the analyzer
over the real repository — the tree must be clean modulo the reviewed
baseline, and the signal-safety closure must demonstrably cover the
flight recorder's installed fatal-signal handler.
"""

import contextlib
import io
import json
import os
import sys
import unittest

TEST_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TEST_DIR))
FIXTURES = os.path.join(TEST_DIR, "fixtures")
sys.path.insert(0, os.path.join(REPO_ROOT, "scripts", "analysis"))

import sj_analyze  # noqa: E402


def run_fixture(fixture, *extra_args):
    """Runs sj_analyze on a fixture root; returns (exit code, findings)."""
    root = os.path.join(FIXTURES, fixture)
    argv = ["--root", root, "--frontend", "textual", "--no-cache",
            "--no-baseline", "--json"] + list(extra_args)
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = sj_analyze.main(argv)
    return code, json.loads(out.getvalue())


def rules_of(findings):
    return sorted({f["rule"] for f in findings})


class SignalSafetyTest(unittest.TestCase):
    def test_bad_handler_fires_all_rules(self):
        code, findings = run_fixture("signal_bad", "--checks",
                                     "signal-safety")
        self.assertEqual(code, 1)
        rules = rules_of(findings)
        self.assertIn("signal-alloc", rules)
        self.assertIn("signal-lock", rules)
        self.assertIn("signal-unsafe-call", rules)
        # The allocation lives in GrowScratch, reached *through* the
        # handler — transitive attribution must name the callee.
        allocs = [f for f in findings if f["rule"] == "signal-alloc"]
        self.assertTrue(any("GrowScratch" in f["message"] for f in allocs),
                        allocs)
        banned = [f for f in findings if f["rule"] == "signal-unsafe-call"]
        self.assertTrue(any("fprintf" in f["message"] for f in banned),
                        banned)

    def test_good_handler_is_clean(self):
        code, findings = run_fixture("signal_good", "--checks",
                                     "signal-safety")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])

    def test_missing_handler_is_reported(self):
        code, findings = run_fixture("signal_no_root", "--checks",
                                     "signal-safety")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), ["signal-no-root"])

    def test_reachability_covers_transitive_callees(self):
        root = os.path.join(FIXTURES, "signal_good")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_analyze.main(
                ["--root", root, "--frontend", "textual", "--no-cache",
                 "--dump-reachable", "signal-safety"])
        self.assertEqual(code, 0)
        dump = json.loads(out.getvalue())
        self.assertIn("GoodHandler", dump["handler_roots"])
        self.assertTrue(any("GoodHandler" in q for q in dump["reachable"]))
        self.assertTrue(any("EmitBanner" in q for q in dump["reachable"]),
                        dump["reachable"])


class LockOrderTest(unittest.TestCase):
    def test_abba_cycle_detected(self):
        code, findings = run_fixture("lock_cycle", "--checks", "lock-order")
        self.assertEqual(code, 1)
        self.assertIn("lock-cycle", rules_of(findings))
        cycles = [f for f in findings if f["rule"] == "lock-cycle"]
        self.assertTrue(any("Pair::a" in f["message"] and
                            "Pair::b" in f["message"] for f in cycles),
                        cycles)

    def test_documented_order_violation(self):
        code, findings = run_fixture(
            "lock_inversion", "--checks", "lock-order",
            "--order", "BufferPool::mu_,DiskManager::mu_")
        self.assertEqual(code, 1)
        violations = [f for f in findings
                      if f["rule"] == "lock-order-violation"]
        self.assertTrue(violations, findings)
        self.assertIn("BufferPool::mu_", violations[0]["message"])
        self.assertIn("DiskManager::mu_", violations[0]["message"])

    def test_excludes_annotation_enforced_interprocedurally(self):
        code, findings = run_fixture("lock_excludes", "--checks",
                                     "lock-order")
        self.assertEqual(code, 1)
        self.assertIn("lock-excludes-violation", rules_of(findings))

    def test_consistent_hierarchy_is_clean(self):
        code, findings = run_fixture(
            "lock_good", "--checks", "lock-order",
            "--order", "Outer::mu_,Inner::mu_")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])


class HotPathTest(unittest.TestCase):
    def test_impure_hot_function_fires_all_rules(self):
        code, findings = run_fixture("hot_bad", "--checks", "hot-path")
        self.assertEqual(code, 1)
        rules = rules_of(findings)
        for rule in ("hot-alloc", "hot-lock", "hot-throw",
                     "hot-virtual-call"):
            self.assertIn(rule, rules)
        # Transitive: the helper's allocation is attributed with the
        # chain from the SJ_HOT root.
        allocs = [f for f in findings if f["rule"] == "hot-alloc"]
        self.assertTrue(any("GrowBuffer" in f["message"] and
                            "HotViaHelper" in f["message"]
                            for f in allocs), allocs)

    def test_pure_hot_function_is_clean(self):
        code, findings = run_fixture("hot_good", "--checks", "hot-path")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])


class BaselineTest(unittest.TestCase):
    def test_baseline_suppresses_and_flips_exit_code(self):
        import tempfile
        code, findings = run_fixture("hot_good", "--checks", "hot-path")
        self.assertEqual(findings, [])
        # Baseline every hot_bad finding; the run must then exit 0 with
        # every finding still present in JSON but marked suppressed.
        code, findings = run_fixture("hot_bad", "--checks", "hot-path")
        self.assertEqual(code, 1)
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            root = os.path.join(FIXTURES, "hot_bad")
            with contextlib.redirect_stdout(io.StringIO()):
                sj_analyze.main(
                    ["--root", root, "--frontend", "textual", "--no-cache",
                     "--checks", "hot-path", "--baseline", baseline_path,
                     "--write-baseline"])
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = sj_analyze.main(
                    ["--root", root, "--frontend", "textual", "--no-cache",
                     "--checks", "hot-path", "--baseline", baseline_path,
                     "--json"])
            self.assertEqual(code, 0)
            suppressed = json.loads(out.getvalue())
            self.assertTrue(suppressed)
            self.assertTrue(all(f["suppressed"] for f in suppressed))

    def test_json_schema_matches_sj_lint(self):
        _code, findings = run_fixture("hot_bad", "--checks", "hot-path")
        self.assertTrue(findings)
        for finding in findings:
            self.assertEqual(sorted(finding.keys()),
                             ["line", "message", "path", "rule",
                              "suppressed"])


class WireTaintTest(unittest.TestCase):
    def test_direct_flow_fires_on_both_sinks(self):
        code, findings = run_fixture("taint_bad_direct", "--checks",
                                     "wire-taint")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), ["wire-taint"])
        sinks = sorted(f["message"].split(" reaches ")[1].split(" in ")[0]
                       for f in findings)
        self.assertEqual(sinks, ["at argument", "resize argument"])

    def test_interprocedural_sink_attributed_through_helper(self):
        code, findings = run_fixture("taint_bad_interproc", "--checks",
                                     "wire-taint")
        self.assertEqual(code, 1)
        self.assertEqual(len(findings), 1)
        # The memcpy lives in CopyInto; the finding must land at the
        # tainted call site in HandleFrame and name the helper.
        self.assertIn("HandleFrame", findings[0]["message"])
        self.assertIn("via CopyInto", findings[0]["message"])
        self.assertIn("memcpy", findings[0]["message"])

    def test_taint_survives_outparam_and_return(self):
        code, findings = run_fixture("taint_bad_outparam", "--checks",
                                     "wire-taint")
        self.assertEqual(code, 1)
        self.assertEqual(len(findings), 1)
        self.assertIn("BuildTable", findings[0]["message"])
        self.assertIn("reserve", findings[0]["message"])

    def test_sanitized_flows_are_clean(self):
        code, findings = run_fixture("taint_good", "--checks", "wire-taint")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])

    def test_missing_source_is_reported(self):
        code, findings = run_fixture("taint_no_source", "--checks",
                                     "wire-taint")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), ["wire-taint-no-source"])


class BlockingUnderLockTest(unittest.TestCase):
    def test_send_under_lock_fires(self):
        code, findings = run_fixture("block_bad_direct", "--checks",
                                     "blocking-under-lock")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), ["lock-blocking-call"])
        self.assertIn("Conn::Reply", findings[0]["message"])
        self.assertIn("send", findings[0]["message"])
        self.assertIn("Conn::mu_", findings[0]["message"])

    def test_blocking_leaf_witnessed_transitively(self):
        code, findings = run_fixture("block_bad_transitive", "--checks",
                                     "blocking-under-lock")
        self.assertEqual(code, 1)
        # fwrite sits inside AppendRecord; the finding lands at the
        # locked call site in Commit with the leaf as witness.
        self.assertTrue(any("Journal::Commit" in f["message"] and
                            "fwrite" in f["message"] for f in findings),
                        findings)
        self.assertTrue(any("fflush" in f["message"] for f in findings),
                        findings)

    def test_sj_blocking_annotation_is_a_sink(self):
        code, findings = run_fixture("block_bad_annotated", "--checks",
                                     "blocking-under-lock")
        self.assertEqual(code, 1)
        self.assertEqual(len(findings), 1)
        self.assertIn("PostTask", findings[0]["message"])
        self.assertIn("Scheduler::mu_", findings[0]["message"])

    def test_condvar_release_and_scope_close_are_clean(self):
        code, findings = run_fixture("block_good", "--checks",
                                     "blocking-under-lock")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])


class CancellationTest(unittest.TestCase):
    def test_unpolled_loop_under_dispatch_fires(self):
        code, findings = run_fixture("cancel_bad_loop", "--checks",
                                     "cancellation")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), ["cancel-unpolled-loop"])
        self.assertIn("RunQuery", findings[0]["message"])

    def test_deep_loop_attributed_with_call_chain(self):
        code, findings = run_fixture("cancel_bad_deep", "--checks",
                                     "cancellation")
        self.assertEqual(code, 1)
        self.assertEqual(len(findings), 1)
        self.assertIn("DrainRun", findings[0]["message"])
        self.assertIn("Submit -> Execute -> ScanPartition -> DrainRun",
                      findings[0]["message"])

    def test_bounded_marker_claims_only_innermost_loop(self):
        code, findings = run_fixture("cancel_bad_nested", "--checks",
                                     "cancellation")
        self.assertEqual(code, 1)
        # The inner drain loop is marked; only the outer sweep fires.
        self.assertEqual(len(findings), 1)
        self.assertIn("Sweep", findings[0]["message"])

    def test_poll_marker_and_transitive_poll_are_clean(self):
        code, findings = run_fixture("cancel_good", "--checks",
                                     "cancellation")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])

    def test_missing_dispatch_is_reported(self):
        code, findings = run_fixture("cancel_no_root", "--checks",
                                     "cancellation")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), ["cancel-no-root"])


class StaleBaselineTest(unittest.TestCase):
    def test_stale_entry_fails_the_run(self):
        """A baseline entry whose rule belongs to a checker that ran but
        matches no current finding must itself become a finding."""
        import tempfile
        root = os.path.join(FIXTURES, "block_good")
        stale = {
            "version": 1,
            "entries": [{
                "rule": "lock-blocking-call",
                "symbol": "Conn::Reply",
                "detail": "send:Conn::mu_",
                "justification": "fixed long ago; entry left behind",
            }],
        }
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            with open(baseline_path, "w", encoding="utf-8") as f:
                json.dump(stale, f)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = sj_analyze.main(
                    ["--root", root, "--frontend", "textual", "--no-cache",
                     "--checks", "blocking-under-lock",
                     "--baseline", baseline_path, "--json"])
            self.assertEqual(code, 1)
            findings = json.loads(out.getvalue())
            self.assertEqual(rules_of(findings), ["baseline-stale"])
            self.assertIn("Conn::Reply", findings[0]["message"])

    def test_entry_for_unrun_checker_is_not_stale(self):
        """Running only wire-taint must not condemn lock entries — their
        checker produced no findings to match against."""
        import tempfile
        root = os.path.join(FIXTURES, "taint_good")
        unrelated = {
            "version": 1,
            "entries": [{
                "rule": "lock-blocking-call",
                "symbol": "Conn::Reply",
                "detail": "send:Conn::mu_",
                "justification": "owned by a checker not running here",
            }],
        }
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            with open(baseline_path, "w", encoding="utf-8") as f:
                json.dump(unrelated, f)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = sj_analyze.main(
                    ["--root", root, "--frontend", "textual", "--no-cache",
                     "--checks", "wire-taint",
                     "--baseline", baseline_path, "--json"])
            self.assertEqual(code, 0)
            self.assertEqual(json.loads(out.getvalue()), [])


class RealRepoTest(unittest.TestCase):
    def test_repo_is_clean_modulo_baseline(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_analyze.main(
                ["--root", REPO_ROOT, "--frontend", "textual",
                 "--no-cache"])
        self.assertEqual(code, 0, out.getvalue())

    def test_signal_closure_covers_flight_recorder_handler(self):
        """The acceptance criterion: the checker's closure demonstrably
        starts at the installed fatal-signal handler and spans the whole
        dump pipeline."""
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_analyze.main(
                ["--root", REPO_ROOT, "--frontend", "textual", "--no-cache",
                 "--dump-reachable", "signal-safety"])
        self.assertEqual(code, 0)
        dump = json.loads(out.getvalue())
        self.assertIn("OnFatalSignal", dump["handler_roots"])
        for expected in ("OnFatalSignal", "ClaimDumpFlag",
                         "WriteDumpToPath", "WriteDump",
                         "WriteEventsSection", "WriteSpansSection",
                         "WriteMetricsSection", "SignalName"):
            self.assertTrue(
                any(q.endswith(expected) or ("::" + expected) in q
                    or q == expected for q in dump["reachable"]),
                "expected %s in signal closure, got %d functions"
                % (expected, len(dump["reachable"])))


class DataflowCoverageTest(unittest.TestCase):
    """Acceptance guards: the annotations provably cover the surfaces
    the checkers claim to protect, so a new decoder or join strategy
    cannot silently fall outside the analysis."""

    @staticmethod
    def dump(kind):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_analyze.main(
                ["--root", REPO_ROOT, "--frontend", "textual", "--no-cache",
                 "--dump-reachable", kind])
        return code, json.loads(out.getvalue())

    def test_every_wire_reader_accessor_is_annotated(self):
        """Every WireReader accessor defined in protocol.cc must be an
        SJ_UNTRUSTED source or an SJ_VALIDATES sanitizer. The method
        list is re-derived from the source text, so adding an accessor
        without an annotation fails here."""
        import re
        code, dump = self.dump("wire-taint")
        self.assertEqual(code, 0)
        covered = set(dump["sources"]) | set(dump["sanitizers"])
        protocol = os.path.join(REPO_ROOT, "src", "server", "protocol.cc")
        with open(protocol, encoding="utf-8") as f:
            text = f.read()
        accessors = set(re.findall(r"\bbool\s+(Read\w+)\s*\(", text))
        self.assertTrue(accessors, "WireReader accessors not found")
        for name in sorted(accessors):
            qual = "spatialjoin::server::WireReader::" + name
            self.assertIn(qual, covered,
                          "%s is not SJ_UNTRUSTED/SJ_VALIDATES" % qual)
        # The raw little-endian loaders feeding the accessors are
        # sources too.
        self.assertIn("spatialjoin::server::LoadU32", dump["sources"])
        self.assertIn("spatialjoin::server::LoadU64", dump["sources"])

    def test_request_decoders_are_sanitizers(self):
        code, dump = self.dump("wire-taint")
        self.assertEqual(code, 0)
        for name in ("DecodeSelectRequest", "DecodeJoinRequest",
                     "DecodeCancelRequest", "DecodeReply"):
            self.assertIn("spatialjoin::server::" + name,
                          dump["sanitizers"])

    def test_cancellation_closure_covers_query_engine(self):
        """Every SELECT/JOIN strategy the scheduler can dispatch must be
        inside the cancellation closure — otherwise its loops are never
        checked for polls."""
        code, dump = self.dump("cancellation")
        self.assertEqual(code, 0)
        self.assertEqual(dump["dispatch"],
                         ["spatialjoin::server::QueryScheduler::Submit"])
        covered = set(dump["covered"])
        for expected in ("spatialjoin::DispatchSelect",
                         "spatialjoin::DispatchJoin",
                         "spatialjoin::SpatialSelect",
                         "spatialjoin::NestedLoopJoin",
                         "spatialjoin::IndexNestedLoopJoin",
                         "spatialjoin::SortMergeZOrderJoin",
                         "spatialjoin::TreeJoin",
                         "spatialjoin::LocalJoinIndex::Execute",
                         "spatialjoin::exec::PartitionedJoin",
                         "spatialjoin::exec::ParallelTreeJoin"):
            self.assertIn(expected, covered)

    def test_session_reply_path_has_no_blocking_under_lock(self):
        """The fixed bug: DrainWrites sends with no session mutex held.
        The dump must show the send path is still blocking (the checker
        sees it) while the repo run stays clean (nothing holds a lock
        across it)."""
        code, dump = self.dump("blocking-under-lock")
        self.assertEqual(code, 0)
        blocking = dump["blocking"]
        drain = [q for q in blocking
                 if q.endswith("Session::DrainWrites")]
        self.assertTrue(drain, sorted(blocking)[:20])
        self.assertIn("send", blocking[drain[0]])
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_analyze.main(
                ["--root", REPO_ROOT, "--frontend", "textual", "--no-cache",
                 "--no-baseline", "--json",
                 "--checks", "blocking-under-lock"])
        findings = [f for f in json.loads(out.getvalue())
                    if "Session::" in f["message"]]
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main()
