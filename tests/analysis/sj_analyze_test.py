#!/usr/bin/env python3
"""Self-tests for scripts/analysis/sj_analyze.py.

Each checker is exercised both ways: it must fire on a known-bad fixture
and stay silent on the matching control. The last tests run the analyzer
over the real repository — the tree must be clean modulo the reviewed
baseline, and the signal-safety closure must demonstrably cover the
flight recorder's installed fatal-signal handler.
"""

import contextlib
import io
import json
import os
import sys
import unittest

TEST_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TEST_DIR))
FIXTURES = os.path.join(TEST_DIR, "fixtures")
sys.path.insert(0, os.path.join(REPO_ROOT, "scripts", "analysis"))

import sj_analyze  # noqa: E402


def run_fixture(fixture, *extra_args):
    """Runs sj_analyze on a fixture root; returns (exit code, findings)."""
    root = os.path.join(FIXTURES, fixture)
    argv = ["--root", root, "--frontend", "textual", "--no-cache",
            "--no-baseline", "--json"] + list(extra_args)
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = sj_analyze.main(argv)
    return code, json.loads(out.getvalue())


def rules_of(findings):
    return sorted({f["rule"] for f in findings})


class SignalSafetyTest(unittest.TestCase):
    def test_bad_handler_fires_all_rules(self):
        code, findings = run_fixture("signal_bad", "--checks",
                                     "signal-safety")
        self.assertEqual(code, 1)
        rules = rules_of(findings)
        self.assertIn("signal-alloc", rules)
        self.assertIn("signal-lock", rules)
        self.assertIn("signal-unsafe-call", rules)
        # The allocation lives in GrowScratch, reached *through* the
        # handler — transitive attribution must name the callee.
        allocs = [f for f in findings if f["rule"] == "signal-alloc"]
        self.assertTrue(any("GrowScratch" in f["message"] for f in allocs),
                        allocs)
        banned = [f for f in findings if f["rule"] == "signal-unsafe-call"]
        self.assertTrue(any("fprintf" in f["message"] for f in banned),
                        banned)

    def test_good_handler_is_clean(self):
        code, findings = run_fixture("signal_good", "--checks",
                                     "signal-safety")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])

    def test_missing_handler_is_reported(self):
        code, findings = run_fixture("signal_no_root", "--checks",
                                     "signal-safety")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), ["signal-no-root"])

    def test_reachability_covers_transitive_callees(self):
        root = os.path.join(FIXTURES, "signal_good")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_analyze.main(
                ["--root", root, "--frontend", "textual", "--no-cache",
                 "--dump-reachable", "signal-safety"])
        self.assertEqual(code, 0)
        dump = json.loads(out.getvalue())
        self.assertIn("GoodHandler", dump["handler_roots"])
        self.assertTrue(any("GoodHandler" in q for q in dump["reachable"]))
        self.assertTrue(any("EmitBanner" in q for q in dump["reachable"]),
                        dump["reachable"])


class LockOrderTest(unittest.TestCase):
    def test_abba_cycle_detected(self):
        code, findings = run_fixture("lock_cycle", "--checks", "lock-order")
        self.assertEqual(code, 1)
        self.assertIn("lock-cycle", rules_of(findings))
        cycles = [f for f in findings if f["rule"] == "lock-cycle"]
        self.assertTrue(any("Pair::a" in f["message"] and
                            "Pair::b" in f["message"] for f in cycles),
                        cycles)

    def test_documented_order_violation(self):
        code, findings = run_fixture(
            "lock_inversion", "--checks", "lock-order",
            "--order", "BufferPool::mu_,DiskManager::mu_")
        self.assertEqual(code, 1)
        violations = [f for f in findings
                      if f["rule"] == "lock-order-violation"]
        self.assertTrue(violations, findings)
        self.assertIn("BufferPool::mu_", violations[0]["message"])
        self.assertIn("DiskManager::mu_", violations[0]["message"])

    def test_excludes_annotation_enforced_interprocedurally(self):
        code, findings = run_fixture("lock_excludes", "--checks",
                                     "lock-order")
        self.assertEqual(code, 1)
        self.assertIn("lock-excludes-violation", rules_of(findings))

    def test_consistent_hierarchy_is_clean(self):
        code, findings = run_fixture(
            "lock_good", "--checks", "lock-order",
            "--order", "Outer::mu_,Inner::mu_")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])


class HotPathTest(unittest.TestCase):
    def test_impure_hot_function_fires_all_rules(self):
        code, findings = run_fixture("hot_bad", "--checks", "hot-path")
        self.assertEqual(code, 1)
        rules = rules_of(findings)
        for rule in ("hot-alloc", "hot-lock", "hot-throw",
                     "hot-virtual-call"):
            self.assertIn(rule, rules)
        # Transitive: the helper's allocation is attributed with the
        # chain from the SJ_HOT root.
        allocs = [f for f in findings if f["rule"] == "hot-alloc"]
        self.assertTrue(any("GrowBuffer" in f["message"] and
                            "HotViaHelper" in f["message"]
                            for f in allocs), allocs)

    def test_pure_hot_function_is_clean(self):
        code, findings = run_fixture("hot_good", "--checks", "hot-path")
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])


class BaselineTest(unittest.TestCase):
    def test_baseline_suppresses_and_flips_exit_code(self):
        import tempfile
        code, findings = run_fixture("hot_good", "--checks", "hot-path")
        self.assertEqual(findings, [])
        # Baseline every hot_bad finding; the run must then exit 0 with
        # every finding still present in JSON but marked suppressed.
        code, findings = run_fixture("hot_bad", "--checks", "hot-path")
        self.assertEqual(code, 1)
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            root = os.path.join(FIXTURES, "hot_bad")
            with contextlib.redirect_stdout(io.StringIO()):
                sj_analyze.main(
                    ["--root", root, "--frontend", "textual", "--no-cache",
                     "--checks", "hot-path", "--baseline", baseline_path,
                     "--write-baseline"])
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = sj_analyze.main(
                    ["--root", root, "--frontend", "textual", "--no-cache",
                     "--checks", "hot-path", "--baseline", baseline_path,
                     "--json"])
            self.assertEqual(code, 0)
            suppressed = json.loads(out.getvalue())
            self.assertTrue(suppressed)
            self.assertTrue(all(f["suppressed"] for f in suppressed))

    def test_json_schema_matches_sj_lint(self):
        _code, findings = run_fixture("hot_bad", "--checks", "hot-path")
        self.assertTrue(findings)
        for finding in findings:
            self.assertEqual(sorted(finding.keys()),
                             ["line", "message", "path", "rule",
                              "suppressed"])


class RealRepoTest(unittest.TestCase):
    def test_repo_is_clean_modulo_baseline(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_analyze.main(
                ["--root", REPO_ROOT, "--frontend", "textual",
                 "--no-cache"])
        self.assertEqual(code, 0, out.getvalue())

    def test_signal_closure_covers_flight_recorder_handler(self):
        """The acceptance criterion: the checker's closure demonstrably
        starts at the installed fatal-signal handler and spans the whole
        dump pipeline."""
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_analyze.main(
                ["--root", REPO_ROOT, "--frontend", "textual", "--no-cache",
                 "--dump-reachable", "signal-safety"])
        self.assertEqual(code, 0)
        dump = json.loads(out.getvalue())
        self.assertIn("OnFatalSignal", dump["handler_roots"])
        for expected in ("OnFatalSignal", "ClaimDumpFlag",
                         "WriteDumpToPath", "WriteDump",
                         "WriteEventsSection", "WriteSpansSection",
                         "WriteMetricsSection", "SignalName"):
            self.assertTrue(
                any(q.endswith(expected) or ("::" + expected) in q
                    or q == expected for q in dump["reachable"]),
                "expected %s in signal closure, got %d functions"
                % (expected, len(dump["reachable"])))


if __name__ == "__main__":
    unittest.main()
