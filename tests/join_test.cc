#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/join.h"
#include "core/memory_gentree.h"
#include "core/nested_loop.h"
#include "core/spatial_join.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

class TreeJoinTest : public ::testing::Test {
 protected:
  TreeJoinTest() : disk_(2000), pool_(&disk_, 1024) {}

  GeneratedHierarchy MakeHierarchy(int height, int fanout, uint64_t seed,
                                   const Rectangle& world) {
    HierarchyOptions options;
    options.height = height;
    options.fanout = fanout;
    options.seed = seed;
    options.shrink = 0.95;
    return GenerateHierarchy(world, options, &pool_,
                             RelationLayout::kClustered);
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(TreeJoinTest, MatchesNestedLoopGroundTruth) {
  // Two different hierarchies over overlapping worlds.
  GeneratedHierarchy r =
      MakeHierarchy(3, 3, 1, Rectangle(0, 0, 100, 100));
  GeneratedHierarchy s =
      MakeHierarchy(3, 4, 2, Rectangle(30, 30, 130, 130));

  WithinDistanceOp within(15.0);
  OverlapsOp overlaps;
  NorthwestOfOp northwest;
  const ThetaOperator* ops[] = {&within, &overlaps, &northwest};
  for (const ThetaOperator* op : ops) {
    JoinResult tree_result = TreeJoin(*r.tree, *s.tree, *op);
    JoinResult ground_truth =
        NestedLoopJoin(*r.relation, r.spatial_column, *s.relation,
                       s.spatial_column, *op);
    EXPECT_EQ(AsSet(tree_result), AsSet(ground_truth)) << op->name();
  }
}

TEST_F(TreeJoinTest, EmitsEachMatchExactlyOnce) {
  GeneratedHierarchy r =
      MakeHierarchy(3, 3, 5, Rectangle(0, 0, 80, 80));
  GeneratedHierarchy s =
      MakeHierarchy(3, 3, 6, Rectangle(10, 10, 90, 90));
  OverlapsOp op;
  JoinResult result = TreeJoin(*r.tree, *s.tree, op);
  MatchSet distinct = AsSet(result);
  EXPECT_EQ(distinct.size(), result.matches.size())
      << "duplicate join results";
  EXPECT_FALSE(result.matches.empty());
}

TEST_F(TreeJoinTest, HandlesTreesOfDifferentHeights) {
  GeneratedHierarchy shallow =
      MakeHierarchy(2, 4, 7, Rectangle(0, 0, 60, 60));
  GeneratedHierarchy deep =
      MakeHierarchy(4, 3, 8, Rectangle(0, 0, 60, 60));
  WithinDistanceOp op(10.0);
  JoinResult forward = TreeJoin(*shallow.tree, *deep.tree, op);
  JoinResult ground_truth =
      NestedLoopJoin(*shallow.relation, shallow.spatial_column,
                     *deep.relation, deep.spatial_column, op);
  EXPECT_EQ(AsSet(forward), AsSet(ground_truth));
  EXPECT_EQ(AsSet(forward).size(), forward.matches.size());
}

TEST_F(TreeJoinTest, AsymmetricOperatorKeepsOrientation) {
  GeneratedHierarchy r =
      MakeHierarchy(2, 3, 9, Rectangle(0, 0, 50, 50));
  GeneratedHierarchy s =
      MakeHierarchy(2, 3, 10, Rectangle(0, 0, 50, 50));
  NorthwestOfOp op;  // asymmetric: θ(a,b) ≠ θ(b,a)
  JoinResult ab = TreeJoin(*r.tree, *s.tree, op);
  JoinResult ground_truth =
      NestedLoopJoin(*r.relation, r.spatial_column, *s.relation,
                     s.spatial_column, op);
  EXPECT_EQ(AsSet(ab), AsSet(ground_truth));
}

TEST_F(TreeJoinTest, SelfJoinWorks) {
  GeneratedHierarchy r =
      MakeHierarchy(3, 3, 11, Rectangle(0, 0, 100, 100));
  OverlapsOp op;
  JoinResult self = TreeJoin(*r.tree, *r.tree, op);
  JoinResult ground_truth =
      NestedLoopJoin(*r.relation, r.spatial_column, *r.relation,
                     r.spatial_column, op);
  EXPECT_EQ(AsSet(self), AsSet(ground_truth));
  // Every object overlaps itself: the diagonal must be present.
  for (TupleId t = 0; t < r.relation->num_tuples(); ++t) {
    EXPECT_TRUE(AsSet(self).count({t, t}));
  }
}

TEST_F(TreeJoinTest, DisjointWorldsPruneAtRoot) {
  GeneratedHierarchy r =
      MakeHierarchy(3, 4, 12, Rectangle(0, 0, 50, 50));
  GeneratedHierarchy s =
      MakeHierarchy(3, 4, 13, Rectangle(1000, 1000, 1050, 1050));
  OverlapsOp op;
  JoinResult result = TreeJoin(*r.tree, *s.tree, op);
  EXPECT_TRUE(result.matches.empty());
  // One Θ test on the root pair suffices.
  EXPECT_EQ(result.theta_upper_tests, 1);
  EXPECT_EQ(result.qual_pairs_examined, 1);
}

TEST_F(TreeJoinTest, CountersAreConsistent) {
  GeneratedHierarchy r =
      MakeHierarchy(3, 3, 14, Rectangle(0, 0, 100, 100));
  GeneratedHierarchy s =
      MakeHierarchy(3, 3, 15, Rectangle(20, 20, 120, 120));
  OverlapsOp op;
  JoinResult result = TreeJoin(*r.tree, *s.tree, op);
  EXPECT_GT(result.theta_upper_tests, 0);
  EXPECT_GE(result.theta_tests, 1);
  // Every θ test follows a successful Θ test.
  EXPECT_LE(result.theta_tests, result.theta_upper_tests);
  EXPECT_GE(result.nodes_accessed, result.theta_tests);
}

TEST_F(TreeJoinTest, SingleNodeTrees) {
  MemoryGenTree r_tree;
  r_tree.AddNode(kInvalidNodeId, Value(Rectangle(0, 0, 10, 10)), 0);
  MemoryGenTree s_tree;
  s_tree.AddNode(kInvalidNodeId, Value(Rectangle(5, 5, 15, 15)), 0);
  OverlapsOp op;
  JoinResult result = TreeJoin(r_tree, s_tree, op);
  ASSERT_EQ(result.matches.size(), 1u);
  EXPECT_EQ(result.matches[0], std::make_pair(TupleId{0}, TupleId{0}));
}

}  // namespace
}  // namespace spatialjoin
