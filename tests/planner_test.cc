#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : disk_(2000), pool_(&disk_, 512) {}

  std::unique_ptr<Relation> MakeRects(const std::string& name, int count,
                                      double max_ext, uint64_t seed) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    auto rel = std::make_unique<Relation>(name, schema, &pool_);
    RectGenerator gen(Rectangle(0, 0, 1000, 1000), seed);
    for (int64_t i = 0; i < count; ++i) {
      rel->Insert(Tuple({Value(i), Value(gen.NextRect(1, max_ext))}));
    }
    return rel;
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(PlannerTest, SelectivityEstimateTracksObjectSize) {
  auto small = MakeRects("small", 300, 5, 1);
  auto large = MakeRects("large", 300, 200, 2);
  OverlapsOp op;
  JoinStatistics s_small =
      EstimateJoinStatistics(*small, 1, *small, 1, op, 2000, 7);
  JoinStatistics s_large =
      EstimateJoinStatistics(*large, 1, *large, 1, op, 2000, 7);
  EXPECT_LT(s_small.selectivity, s_large.selectivity);
  EXPECT_GT(s_large.selectivity, 0.001);
  EXPECT_EQ(s_small.sample_tests, 2000);
  EXPECT_EQ(s_small.r_tuples, 300);
}

TEST_F(PlannerTest, ZeroHitSampleStillGivesPositiveSelectivity) {
  auto a = MakeRects("a", 50, 2, 3);
  // Far-away relation: no overlaps at all.
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  Relation b("b", schema, &pool_);
  for (int64_t i = 0; i < 50; ++i) {
    double x = 5000.0 + static_cast<double>(i);
    b.Insert(Tuple({Value(i), Value(Rectangle(x, 5000, x + 1.0, 5001))}));
  }
  OverlapsOp op;
  JoinStatistics stats = EstimateJoinStatistics(*a, 1, b, 1, op, 300, 5);
  EXPECT_GT(stats.selectivity, 0.0);       // rule-of-three bound
  EXPECT_LT(stats.selectivity, 0.01);
}

TEST_F(PlannerTest, SelectivityStderrShrinksWithSampleSize) {
  auto r = MakeRects("r_var", 300, 50, 31);
  auto s = MakeRects("s_var", 300, 50, 32);
  OverlapsOp op;
  JoinStatistics coarse = EstimateJoinStatistics(*r, 1, *s, 1, op, 100, 7);
  JoinStatistics fine = EstimateJoinStatistics(*r, 1, *s, 1, op, 10000, 7);
  EXPECT_GT(coarse.selectivity_stderr, 0.0);
  EXPECT_GT(fine.selectivity_stderr, 0.0);
  // √(p(1−p)/n): a 100× larger sample cuts the error ~10×.
  EXPECT_LT(fine.selectivity_stderr, coarse.selectivity_stderr);
  // Consistency with the binomial formula at the reported p̂.
  double expected = std::sqrt(fine.selectivity * (1.0 - fine.selectivity) /
                              10000.0);
  EXPECT_DOUBLE_EQ(fine.selectivity_stderr, expected);
}

TEST_F(PlannerTest, NearTieFlagsStatisticallyIndistinguishableRanking) {
  auto r = MakeRects("r_tie", 300, 30, 41);
  auto s = MakeRects("s_tie", 300, 30, 42);
  OverlapsOp op;
  JoinStatistics stats = EstimateJoinStatistics(*r, 1, *s, 1, op, 2000, 9);
  PlannerContext ctx;
  ctx.r_tree_available = true;
  ctx.s_tree_available = true;
  ctx.threads = 4;

  // tree_join and parallel_tree_join share the I/O term and differ only
  // by the computation term / W — a huge selectivity swing separates
  // them, but an artificially tiny stderr must not flag ties, and the
  // chosen strategy itself must never carry the flag.
  JoinPlan plan = PlanJoin(stats, ctx);
  for (const PlannedAlternative& alt : plan.alternatives) {
    if (alt.strategy == plan.strategy) {
      EXPECT_FALSE(alt.near_tie);
    }
  }

  // With an enormous stderr, tree_join and parallel_tree_join — which
  // share the I/O term and converge as p → 0 — cannot be told apart: the
  // loser of the pair must carry the near-tie flag. (Strategies whose
  // cost ignores p, like nested loop, legitimately stay unflagged: their
  // interval is a point.)
  JoinStatistics noisy = stats;
  noisy.selectivity_stderr = 1.0;
  JoinPlan noisy_plan = PlanJoin(noisy, ctx);
  bool tree_pair_tied = false;
  for (const PlannedAlternative& alt : noisy_plan.alternatives) {
    if (alt.strategy == noisy_plan.strategy) continue;
    if (alt.strategy == JoinStrategy::kTreeJoin ||
        alt.strategy == JoinStrategy::kParallelTreeJoin) {
      EXPECT_TRUE(alt.feasible);
      tree_pair_tied = tree_pair_tied || alt.near_tie;
    }
  }
  EXPECT_TRUE(tree_pair_tied);

  // With zero stderr (selectivity supplied, not sampled) nothing is
  // flagged.
  JoinStatistics exact = stats;
  exact.selectivity_stderr = 0.0;
  JoinPlan exact_plan = PlanJoin(exact, ctx);
  for (const PlannedAlternative& alt : exact_plan.alternatives) {
    EXPECT_FALSE(alt.near_tie) << JoinStrategyName(alt.strategy);
  }
}

TEST_F(PlannerTest, ParallelStrategiesEnterThePlanSpace) {
  auto r = MakeRects("r_par", 300, 30, 51);
  auto s = MakeRects("s_par", 300, 30, 52);
  OverlapsOp op;
  JoinStatistics stats = EstimateJoinStatistics(*r, 1, *s, 1, op, 1000, 3);

  PlannerContext serial;
  serial.r_tree_available = true;
  serial.s_tree_available = true;
  serial.threads = 1;
  JoinPlan serial_plan = PlanJoin(stats, serial);

  PlannerContext wide = serial;
  wide.threads = 8;
  wide.probe_window_available = true;
  JoinPlan wide_plan = PlanJoin(stats, wide);

  double serial_par_cost = 0.0;
  double wide_par_cost = 0.0;
  bool serial_par_feasible = true;
  bool wide_pbsm_feasible = false;
  for (int i = 0; i < 7; ++i) {
    if (serial_plan.alternatives[i].strategy ==
        JoinStrategy::kParallelTreeJoin) {
      serial_par_feasible = serial_plan.alternatives[i].feasible;
      serial_par_cost = serial_plan.alternatives[i].estimated_cost;
    }
    if (wide_plan.alternatives[i].strategy ==
        JoinStrategy::kParallelTreeJoin) {
      wide_par_cost = wide_plan.alternatives[i].estimated_cost;
    }
    if (wide_plan.alternatives[i].strategy == JoinStrategy::kPartitionedJoin) {
      wide_pbsm_feasible = wide_plan.alternatives[i].feasible;
    }
  }
  // One thread: the parallel alternative is priced but infeasible.
  EXPECT_FALSE(serial_par_feasible);
  // Eight threads: feasible, and cheaper than its one-thread pricing
  // (the computation term divides by W).
  EXPECT_TRUE(wide_pbsm_feasible);
  EXPECT_LT(wide_par_cost, serial_par_cost);
}

TEST_F(PlannerTest, PrefersJoinIndexOnlyAtLowSelectivityAndNoUpdates) {
  JoinStatistics stats;
  stats.r_tuples = 1000000;
  stats.s_tuples = 1000000;
  stats.selectivity = 1e-12;
  PlannerContext ctx;
  ctx.r_tree_available = true;
  ctx.s_tree_available = true;
  ctx.join_index_available = true;
  JoinPlan plan = PlanJoin(stats, ctx);
  EXPECT_EQ(plan.strategy, JoinStrategy::kJoinIndex) << plan.ToString();

  // The same point with updates flips to the tree (paper §5: join
  // indices only when update ratios are very low).
  ctx.updates_per_query = 10.0;
  JoinPlan updated = PlanJoin(stats, ctx);
  EXPECT_EQ(updated.strategy, JoinStrategy::kTreeJoin)
      << updated.ToString();
}

TEST_F(PlannerTest, PrefersTreeAtModerateSelectivity) {
  JoinStatistics stats;
  stats.r_tuples = 1000000;
  stats.s_tuples = 1000000;
  stats.selectivity = 1e-6;
  PlannerContext ctx;
  ctx.r_tree_available = true;
  ctx.s_tree_available = true;
  ctx.join_index_available = true;
  JoinPlan plan = PlanJoin(stats, ctx);
  EXPECT_EQ(plan.strategy, JoinStrategy::kTreeJoin) << plan.ToString();
}

TEST_F(PlannerTest, FallsBackToNestedLoopWhenNothingAvailable) {
  JoinStatistics stats;
  stats.r_tuples = 1000;
  stats.s_tuples = 1000;
  stats.selectivity = 0.01;
  PlannerContext ctx;  // nothing available
  JoinPlan plan = PlanJoin(stats, ctx);
  EXPECT_EQ(plan.strategy, JoinStrategy::kNestedLoop);
  // All infeasible alternatives are marked as such.
  int feasible = 0;
  for (const auto& alt : plan.alternatives) feasible += alt.feasible;
  EXPECT_EQ(feasible, 1);
}

TEST_F(PlannerTest, NeverPicksInfeasibleStrategy) {
  JoinStatistics stats;
  stats.r_tuples = 100000;
  stats.s_tuples = 100000;
  PlannerContext ctx;
  ctx.s_tree_available = true;  // only one tree → no TreeJoin
  for (double p : {1e-10, 1e-6, 1e-3, 0.1}) {
    stats.selectivity = p;
    JoinPlan plan = PlanJoin(stats, ctx);
    EXPECT_NE(plan.strategy, JoinStrategy::kTreeJoin);
    EXPECT_NE(plan.strategy, JoinStrategy::kJoinIndex);
    EXPECT_NE(plan.strategy, JoinStrategy::kSortMergeZOrder);
  }
}

TEST_F(PlannerTest, PlanToStringListsAlternatives) {
  JoinStatistics stats;
  stats.r_tuples = 1000;
  stats.s_tuples = 1000;
  stats.selectivity = 0.001;
  PlannerContext ctx;
  ctx.r_tree_available = true;
  ctx.s_tree_available = true;
  JoinPlan plan = PlanJoin(stats, ctx);
  std::string text = plan.ToString();
  EXPECT_NE(text.find("plan:"), std::string::npos);
  EXPECT_NE(text.find("nested_loop"), std::string::npos);
  EXPECT_NE(text.find("infeasible"), std::string::npos);
}

TEST_F(PlannerTest, EndToEndPlanAndExecute) {
  auto r = MakeRects("r", 400, 30, 11);
  auto s = MakeRects("s", 400, 30, 12);
  OverlapsOp op;
  JoinStatistics stats = EstimateJoinStatistics(*r, 1, *s, 1, op, 500, 9);
  PlannerContext ctx;
  ctx.overlap_like = true;  // only sort-merge (and NL) available
  JoinPlan plan = PlanJoin(stats, ctx);
  // Whatever it picked must execute and agree with ground truth.
  SpatialJoinContext exec_ctx;
  exec_ctx.r = r.get();
  exec_ctx.col_r = 1;
  exec_ctx.s = s.get();
  exec_ctx.col_s = 1;
  ZGrid grid(Rectangle(0, 0, 1000, 1000));
  exec_ctx.zgrid = &grid;
  JoinResult planned = ExecuteJoin(plan.strategy, exec_ctx, op);
  JoinResult truth =
      ExecuteJoin(JoinStrategy::kNestedLoop, exec_ctx, op);
  NormalizeMatches(&planned);
  NormalizeMatches(&truth);
  EXPECT_EQ(planned.matches, truth.matches);
}

}  // namespace
}  // namespace spatialjoin
