#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : disk_(2000), pool_(&disk_, 512) {}

  std::unique_ptr<Relation> MakeRects(const std::string& name, int count,
                                      double max_ext, uint64_t seed) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    auto rel = std::make_unique<Relation>(name, schema, &pool_);
    RectGenerator gen(Rectangle(0, 0, 1000, 1000), seed);
    for (int64_t i = 0; i < count; ++i) {
      rel->Insert(Tuple({Value(i), Value(gen.NextRect(1, max_ext))}));
    }
    return rel;
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(PlannerTest, SelectivityEstimateTracksObjectSize) {
  auto small = MakeRects("small", 300, 5, 1);
  auto large = MakeRects("large", 300, 200, 2);
  OverlapsOp op;
  JoinStatistics s_small =
      EstimateJoinStatistics(*small, 1, *small, 1, op, 2000, 7);
  JoinStatistics s_large =
      EstimateJoinStatistics(*large, 1, *large, 1, op, 2000, 7);
  EXPECT_LT(s_small.selectivity, s_large.selectivity);
  EXPECT_GT(s_large.selectivity, 0.001);
  EXPECT_EQ(s_small.sample_tests, 2000);
  EXPECT_EQ(s_small.r_tuples, 300);
}

TEST_F(PlannerTest, ZeroHitSampleStillGivesPositiveSelectivity) {
  auto a = MakeRects("a", 50, 2, 3);
  // Far-away relation: no overlaps at all.
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  Relation b("b", schema, &pool_);
  for (int64_t i = 0; i < 50; ++i) {
    double x = 5000.0 + static_cast<double>(i);
    b.Insert(Tuple({Value(i), Value(Rectangle(x, 5000, x + 1.0, 5001))}));
  }
  OverlapsOp op;
  JoinStatistics stats = EstimateJoinStatistics(*a, 1, b, 1, op, 300, 5);
  EXPECT_GT(stats.selectivity, 0.0);       // rule-of-three bound
  EXPECT_LT(stats.selectivity, 0.01);
}

TEST_F(PlannerTest, PrefersJoinIndexOnlyAtLowSelectivityAndNoUpdates) {
  JoinStatistics stats;
  stats.r_tuples = 1000000;
  stats.s_tuples = 1000000;
  stats.selectivity = 1e-12;
  PlannerContext ctx;
  ctx.r_tree_available = true;
  ctx.s_tree_available = true;
  ctx.join_index_available = true;
  JoinPlan plan = PlanJoin(stats, ctx);
  EXPECT_EQ(plan.strategy, JoinStrategy::kJoinIndex) << plan.ToString();

  // The same point with updates flips to the tree (paper §5: join
  // indices only when update ratios are very low).
  ctx.updates_per_query = 10.0;
  JoinPlan updated = PlanJoin(stats, ctx);
  EXPECT_EQ(updated.strategy, JoinStrategy::kTreeJoin)
      << updated.ToString();
}

TEST_F(PlannerTest, PrefersTreeAtModerateSelectivity) {
  JoinStatistics stats;
  stats.r_tuples = 1000000;
  stats.s_tuples = 1000000;
  stats.selectivity = 1e-6;
  PlannerContext ctx;
  ctx.r_tree_available = true;
  ctx.s_tree_available = true;
  ctx.join_index_available = true;
  JoinPlan plan = PlanJoin(stats, ctx);
  EXPECT_EQ(plan.strategy, JoinStrategy::kTreeJoin) << plan.ToString();
}

TEST_F(PlannerTest, FallsBackToNestedLoopWhenNothingAvailable) {
  JoinStatistics stats;
  stats.r_tuples = 1000;
  stats.s_tuples = 1000;
  stats.selectivity = 0.01;
  PlannerContext ctx;  // nothing available
  JoinPlan plan = PlanJoin(stats, ctx);
  EXPECT_EQ(plan.strategy, JoinStrategy::kNestedLoop);
  // All infeasible alternatives are marked as such.
  int feasible = 0;
  for (const auto& alt : plan.alternatives) feasible += alt.feasible;
  EXPECT_EQ(feasible, 1);
}

TEST_F(PlannerTest, NeverPicksInfeasibleStrategy) {
  JoinStatistics stats;
  stats.r_tuples = 100000;
  stats.s_tuples = 100000;
  PlannerContext ctx;
  ctx.s_tree_available = true;  // only one tree → no TreeJoin
  for (double p : {1e-10, 1e-6, 1e-3, 0.1}) {
    stats.selectivity = p;
    JoinPlan plan = PlanJoin(stats, ctx);
    EXPECT_NE(plan.strategy, JoinStrategy::kTreeJoin);
    EXPECT_NE(plan.strategy, JoinStrategy::kJoinIndex);
    EXPECT_NE(plan.strategy, JoinStrategy::kSortMergeZOrder);
  }
}

TEST_F(PlannerTest, PlanToStringListsAlternatives) {
  JoinStatistics stats;
  stats.r_tuples = 1000;
  stats.s_tuples = 1000;
  stats.selectivity = 0.001;
  PlannerContext ctx;
  ctx.r_tree_available = true;
  ctx.s_tree_available = true;
  JoinPlan plan = PlanJoin(stats, ctx);
  std::string text = plan.ToString();
  EXPECT_NE(text.find("plan:"), std::string::npos);
  EXPECT_NE(text.find("nested_loop"), std::string::npos);
  EXPECT_NE(text.find("infeasible"), std::string::npos);
}

TEST_F(PlannerTest, EndToEndPlanAndExecute) {
  auto r = MakeRects("r", 400, 30, 11);
  auto s = MakeRects("s", 400, 30, 12);
  OverlapsOp op;
  JoinStatistics stats = EstimateJoinStatistics(*r, 1, *s, 1, op, 500, 9);
  PlannerContext ctx;
  ctx.overlap_like = true;  // only sort-merge (and NL) available
  JoinPlan plan = PlanJoin(stats, ctx);
  // Whatever it picked must execute and agree with ground truth.
  SpatialJoinContext exec_ctx;
  exec_ctx.r = r.get();
  exec_ctx.col_r = 1;
  exec_ctx.s = s.get();
  exec_ctx.col_s = 1;
  ZGrid grid(Rectangle(0, 0, 1000, 1000));
  exec_ctx.zgrid = &grid;
  JoinResult planned = ExecuteJoin(plan.strategy, exec_ctx, op);
  JoinResult truth =
      ExecuteJoin(JoinStrategy::kNestedLoop, exec_ctx, op);
  NormalizeMatches(&planned);
  NormalizeMatches(&truth);
  EXPECT_EQ(planned.matches, truth.matches);
}

}  // namespace
}  // namespace spatialjoin
