#!/usr/bin/env python3
"""Unit tests for scripts/compare_bench.py — the bench regression gate.

Covers the pieces a bad edit would silently break: leaf flattening
(identity-keyed array rows), the comparison policy (exact counters,
missing metrics, new metrics), the latency opt-in (--latency-rel-tol),
and the ignore machinery (defaults plus --ignore), all through the real
CLI entry point so argument plumbing is exercised too.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

TEST_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TEST_DIR))
sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))

import compare_bench  # noqa: E402


def run_cli(argv):
    """Runs compare_bench.main() with argv; returns (exit code, stdout)."""
    out = io.StringIO()
    old_argv = sys.argv
    sys.argv = ["compare_bench.py"] + argv
    try:
        with contextlib.redirect_stdout(out):
            code = compare_bench.main()
    finally:
        sys.argv = old_argv
    return code, out.getvalue()


class FlattenTest(unittest.TestCase):
    def test_scalars_and_nesting(self):
        flat = compare_bench.flatten({"a": {"b": 1, "c": "x"}, "d": True})
        self.assertEqual(flat, {"a.b": 1, "a.c": "x", "d": True})

    def test_array_rows_keyed_by_strategy_identity(self):
        """Inserting a row mid-sweep must not shift the other rows'
        paths — rows are keyed by their identity column, not index."""
        doc = {"rows": [{"strategy": "nested_loop", "matches": 7},
                        {"strategy": "zorder", "matches": 9}]}
        flat = compare_bench.flatten(doc)
        self.assertEqual(flat["rows[nested_loop].matches"], 7)
        self.assertEqual(flat["rows[zorder].matches"], 9)
        doc["rows"].insert(1, {"strategy": "partitioned", "matches": 8})
        reflat = compare_bench.flatten(doc)
        self.assertEqual(reflat["rows[zorder].matches"], 9)
        self.assertEqual(reflat["rows[partitioned].matches"], 8)

    def test_threads_grid_and_plain_index_labels(self):
        doc = {"sweep": [{"threads": 4, "grid": 64, "ms": 1},
                         {"threads": 8, "ms": 2},
                         {"n_tuples": 1000, "ms": 3},
                         5]}
        flat = compare_bench.flatten(doc)
        self.assertIn("sweep[t4g64].ms", flat)
        self.assertIn("sweep[t8].ms", flat)
        self.assertIn("sweep[n1000].ms", flat)
        self.assertEqual(flat["sweep[3]"], 5)


class CompareGateTest(unittest.TestCase):
    def make_pair(self, tmp, base_doc, fresh_doc):
        baseline = os.path.join(tmp, "baseline.json")
        with open(baseline, "w") as f:
            json.dump({"benches": {base_doc["bench"]: base_doc}}, f)
        fresh = os.path.join(tmp, "fresh.metrics.json")
        with open(fresh, "w") as f:
            json.dump(fresh_doc, f)
        return baseline, fresh

    def test_exact_counter_drift_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline, fresh = self.make_pair(
                tmp, {"bench": "b", "theta_tests": 100},
                {"bench": "b", "theta_tests": 101})
            code, out = run_cli(["--baseline", baseline, fresh])
            self.assertEqual(code, 1)
            self.assertIn("theta_tests", out)

    def test_identical_run_is_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline, fresh = self.make_pair(
                tmp, {"bench": "b", "theta_tests": 100, "ok": True},
                {"bench": "b", "theta_tests": 100, "ok": True})
            code, out = run_cli(["--baseline", baseline, fresh])
            self.assertEqual(code, 0)
            self.assertIn("0 regression(s)", out)

    def test_missing_metric_fails_new_metric_warns(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline, fresh = self.make_pair(
                tmp, {"bench": "b", "gone": 1},
                {"bench": "b", "added": 2})
            code, out = run_cli(["--baseline", baseline, fresh])
            self.assertEqual(code, 1)
            self.assertIn("missing from fresh run", out)
            self.assertIn("new metric not in baseline", out)

    def test_latency_ignored_by_default_gated_on_opt_in(self):
        base = {"bench": "b", "latency_ns": {"p50": 1000, "p90": 5000,
                                             "p99": 9000}}
        fresh_doc = {"bench": "b", "latency_ns": {"p50": 3000, "p90": 50000,
                                                  "p99": 9100}}
        with tempfile.TemporaryDirectory() as tmp:
            baseline, fresh = self.make_pair(tmp, base, fresh_doc)
            # Default: absolute latency is machine-dependent — ignored.
            code, _ = run_cli(["--baseline", baseline, fresh])
            self.assertEqual(code, 0)
            # Opt-in at 50%: p50 tripled -> FAIL; p99 within tolerance;
            # p90 stays ignored no matter how wild.
            code, out = run_cli(["--baseline", baseline,
                                 "--latency-rel-tol", "0.5", fresh])
            self.assertEqual(code, 1)
            self.assertIn("latency_ns.p50", out)
            self.assertNotIn("latency_ns.p90", out)
            self.assertNotIn("latency_ns.p99", out)

    def test_default_ignores_cover_machine_dependent_leaves(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline, fresh = self.make_pair(
                tmp, {"bench": "b", "wall_ns": 1, "speedup": 2.0,
                      "peak_rss": 3},
                {"bench": "b", "wall_ns": 100, "speedup": 9.0,
                 "peak_rss": 300})
            code, out = run_cli(["--baseline", baseline, fresh])
            self.assertEqual(code, 0, out)

    def test_ignore_flag_adds_a_glob(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline, fresh = self.make_pair(
                tmp, {"bench": "b", "flaky_counter": 1, "stable": 5},
                {"bench": "b", "flaky_counter": 2, "stable": 5})
            code, _ = run_cli(["--baseline", baseline, fresh])
            self.assertEqual(code, 1)
            code, out = run_cli(["--baseline", baseline,
                                 "--ignore", "*flaky*", fresh])
            self.assertEqual(code, 0, out)

    def test_warn_only_reports_but_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline, fresh = self.make_pair(
                tmp, {"bench": "b", "count": 1},
                {"bench": "b", "count": 2})
            code, out = run_cli(["--baseline", baseline, "--warn-only",
                                 fresh])
            self.assertEqual(code, 0)
            self.assertIn("FAIL", out)
            self.assertIn("--warn-only", out)

    def test_seed_writes_baseline(self):
        with tempfile.TemporaryDirectory() as tmp:
            fresh = os.path.join(tmp, "fresh.metrics.json")
            with open(fresh, "w") as f:
                json.dump({"bench": "b", "count": 42}, f)
            baseline = os.path.join(tmp, "baseline.json")
            code, _ = run_cli(["--baseline", baseline, "--seed", fresh])
            self.assertEqual(code, 0)
            with open(baseline) as f:
                seeded = json.load(f)
            self.assertEqual(seeded["benches"]["b"]["count"], 42)
            # The seeded baseline must gate its own artifacts cleanly.
            code, out = run_cli(["--baseline", baseline, fresh])
            self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
