// End-to-end tests exercising the whole stack: simulated disk → buffer
// pool → relations → spatial indices → join strategies, on the paper's
// running example ("find all houses within 10 kilometers from a lake").
#include <gtest/gtest.h>

#include <set>

#include "core/index_nested_loop.h"
#include "core/join.h"
#include "core/memory_gentree.h"
#include "core/nested_loop.h"
#include "core/select.h"
#include "core/spatial_join.h"
#include "core/theta_ops.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"
#include "workload/scenario_houses_lakes.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

// The paper's query (2): house within 10 km of a lake, as a θ-operator
// on (point, polygon) pairs measured between closest points.
class WithinBufferOp : public ThetaOperator {
 public:
  explicit WithinBufferOp(double d) : d_(d) {}
  std::string name() const override { return "within_buffer"; }
  bool Theta(const Value& a, const Value& b) const override {
    return MinDistanceBetween(a, b) <= d_;
  }
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override {
    return a.MinDistance(b) <= d_;
  }
  bool is_symmetric() const override { return true; }

 private:
  double d_;
};

class HousesLakesIntegrationTest : public ::testing::Test {
 protected:
  HousesLakesIntegrationTest() : disk_(2000), pool_(&disk_, 4000) {
    HousesLakesOptions options;
    options.num_houses = 500;
    options.num_lakes = 20;
    scenario_ = GenerateHousesLakes(options, &pool_);

    // R-tree on the houses' locations.
    houses_rtree_ = std::make_unique<RTree>(&pool_,
                                            RTreeSplit::kQuadratic, 8);
    scenario_.houses->Scan([&](TupleId tid, const Tuple& t) {
      houses_rtree_->Insert(t.value(2).Mbr(), tid);
    });
    houses_tree_ = std::make_unique<RTreeGenTree>(
        houses_rtree_.get(), scenario_.houses.get(), 2);
  }

  DiskManager disk_;
  BufferPool pool_;
  HousesLakesScenario scenario_;
  std::unique_ptr<RTree> houses_rtree_;
  std::unique_ptr<RTreeGenTree> houses_tree_;
};

TEST_F(HousesLakesIntegrationTest, PaperQueryAcrossStrategies) {
  WithinBufferOp op(10.0);
  // Ground truth by blocked nested loop (strategy I).
  JoinResult nested = NestedLoopJoin(*scenario_.houses, 2,
                                     *scenario_.lakes, 2, op);
  EXPECT_FALSE(nested.matches.empty());

  // Index-supported join probing the houses' R-tree per lake.
  JoinResult indexed =
      IndexNestedLoopJoin(*houses_tree_, *scenario_.lakes, 2, op);
  EXPECT_EQ(AsSet(indexed), AsSet(nested));
  EXPECT_LT(indexed.theta_tests, nested.theta_tests);
}

TEST_F(HousesLakesIntegrationTest, SpatialSelectionForOneLake) {
  // Query (1)-style degenerate join: one selector object against the
  // houses relation, via the R-tree and by exhaustive scan.
  WithinBufferOp op(10.0);
  Value lake = scenario_.lakes->Read(3).value(2);
  SelectResult tree_result = SpatialSelect(lake, *houses_tree_, op);
  JoinResult scan = NestedLoopSelect(lake, *scenario_.houses, 2, op);
  std::set<TupleId> tree_tids(tree_result.matching_tuples.begin(),
                              tree_result.matching_tuples.end());
  std::set<TupleId> scan_tids;
  for (const auto& m : scan.matches) scan_tids.insert(m.first);
  EXPECT_EQ(tree_tids, scan_tids);
  EXPECT_LT(tree_result.theta_tests, scenario_.houses->num_tuples());
}

TEST_F(HousesLakesIntegrationTest, IoAccountingFlowsThroughStack) {
  WithinBufferOp op(10.0);
  ASSERT_TRUE(pool_.Clear().ok());
  disk_.ResetStats();
  pool_.ResetStats();
  Value lake = scenario_.lakes->Read(0).value(2);
  int64_t reads_after_lake = disk_.stats().page_reads;
  SpatialSelect(lake, *houses_tree_, op);
  // The selection must fault in index pages + qualifying house tuples,
  // but not the whole database.
  int64_t select_reads = disk_.stats().page_reads - reads_after_lake;
  EXPECT_GT(select_reads, 0);
  EXPECT_LT(select_reads, disk_.num_pages());
  EXPECT_GT(pool_.stats().hit_rate(), 0.0);
}

TEST(CartographicIntegrationTest, SelfJoinOnHierarchy) {
  // Fig. 3-style hierarchy joined with itself: overlapping regions.
  DiskManager disk(2000);
  BufferPool pool(&disk, 2048);
  HierarchyOptions options;
  options.height = 3;
  options.fanout = 4;
  options.shrink = 1.0;  // exact tiling → rich adjacency
  GeneratedHierarchy h = GenerateHierarchy(
      Rectangle(0, 0, 128, 128), options, &pool,
      RelationLayout::kClustered, /*pad_tuples_to=*/300,
      /*shuffle=*/false);
  OverlapsOp op;
  JoinResult tree_join = TreeJoin(*h.tree, *h.tree, op);
  JoinResult ground_truth = NestedLoopJoin(
      *h.relation, h.spatial_column, *h.relation, h.spatial_column, op);
  EXPECT_EQ(AsSet(tree_join), AsSet(ground_truth));
  // Hierarchy property: every region overlaps its ancestors, so the
  // result must contain all ancestor-descendant pairs.
  MatchSet set = AsSet(tree_join);
  for (NodeId n = 0; n < h.tree->num_nodes(); ++n) {
    NodeId parent = h.tree->ParentOf(n);
    if (parent == kInvalidNodeId) continue;
    EXPECT_TRUE(set.count({h.tree->TupleOf(n), h.tree->TupleOf(parent)}));
  }
}

TEST(PolylineIntegrationTest, RiversCrossRegionsAcrossStrategies) {
  // Heterogeneous geometry end-to-end: polyline rivers joined with
  // rectangle regions, via nested loop and Algorithm JOIN over two
  // hand-built hierarchies.
  DiskManager disk(2000);
  BufferPool pool(&disk, 512);
  Schema region_schema({{"id", ValueType::kInt64},
                        {"area", ValueType::kRectangle}});
  Schema river_schema({{"id", ValueType::kInt64},
                       {"course", ValueType::kPolyline}});
  Relation regions("regions", region_schema, &pool);
  Relation rivers("rivers", river_schema, &pool);

  MemoryGenTree region_tree;
  NodeId region_root = region_tree.AddNode(
      kInvalidNodeId, Value(Rectangle(0, 0, 100, 100)),
      regions.Insert(
          Tuple({Value(int64_t{0}), Value(Rectangle(0, 0, 100, 100))})));
  for (int i = 0; i < 4; ++i) {
    double x = 10.0 + 20.0 * i;
    Rectangle cell(x, 20, x + 15, 80);
    region_tree.AddNode(
        region_root, Value(cell),
        regions.Insert(Tuple({Value(int64_t{i + 1}), Value(cell)})));
  }

  MemoryGenTree river_tree;
  NodeId river_root = river_tree.AddNode(
      kInvalidNodeId, Value(Rectangle(0, 0, 100, 100)), kInvalidTupleId);
  Polyline crossing({{5, 50}, {95, 55}});    // crosses every column
  Polyline vertical({{12, 25}, {14, 75}});   // stays inside column 1
  Polyline outside({{5, 5}, {95, 8}});       // below all columns
  for (const Polyline& course : {crossing, vertical, outside}) {
    river_tree.AddNode(
        river_root, Value(course),
        rivers.Insert(Tuple({Value(rivers.num_tuples()), Value(course)})));
  }

  OverlapsOp op;
  JoinResult tree_join = TreeJoin(region_tree, river_tree, op);
  JoinResult ground_truth = NestedLoopJoin(regions, 1, rivers, 1, op);
  MatchSet tree_set = AsSet(tree_join);
  EXPECT_EQ(tree_set, AsSet(ground_truth));
  // The crossing river matches all five regions, the vertical one
  // exactly two (root + its column), the outside one only the root.
  int crossing_matches = 0;
  for (const auto& m : tree_set) crossing_matches += m.second == 0;
  EXPECT_EQ(crossing_matches, 5);
  EXPECT_TRUE(tree_set.count({1, 1}));
  EXPECT_FALSE(tree_set.count({2, 1}));
  EXPECT_TRUE(tree_set.count({0, 2}));
  EXPECT_FALSE(tree_set.count({1, 2}));
}

TEST(ClusteringIntegrationTest, ClusteredLayoutReducesSelectIo) {
  // Strategy IIb vs IIa (paper §4.3): the same SELECT pays fewer page
  // faults when tuples are clustered in breadth-first tree order.
  HierarchyOptions options;
  options.height = 5;
  options.fanout = 4;  // 1365 nodes

  DiskManager disk_clustered(2000);
  BufferPool pool_clustered(&disk_clustered, 64);
  GeneratedHierarchy clustered = GenerateHierarchy(
      Rectangle(0, 0, 1024, 1024), options, &pool_clustered,
      RelationLayout::kClustered, /*pad_tuples_to=*/300);

  DiskManager disk_heap(2000);
  BufferPool pool_heap(&disk_heap, 64);
  GeneratedHierarchy shuffled = GenerateHierarchy(
      Rectangle(0, 0, 1024, 1024), options, &pool_heap,
      RelationLayout::kHeap, /*pad_tuples_to=*/300,
      /*shuffle_storage_order=*/true);

  OverlapsOp op;
  Value selector(Rectangle(100, 100, 400, 400));

  ASSERT_TRUE(pool_clustered.Clear().ok());
  disk_clustered.ResetStats();
  SelectResult a = SpatialSelect(selector, *clustered.tree, op);
  int64_t io_clustered = disk_clustered.stats().page_reads;

  ASSERT_TRUE(pool_heap.Clear().ok());
  disk_heap.ResetStats();
  SelectResult b = SpatialSelect(selector, *shuffled.tree, op);
  int64_t io_unclustered = disk_heap.stats().page_reads;

  // Same logical work...
  EXPECT_EQ(a.theta_tests, b.theta_tests);
  EXPECT_EQ(a.matching_tuples.size(), b.matching_tuples.size());
  // ...less physical I/O for the clustered layout.
  EXPECT_LT(io_clustered, io_unclustered);
}

}  // namespace
}  // namespace spatialjoin
