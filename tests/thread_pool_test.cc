#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "audit/exec_audit.h"
#include "exec/thread_pool.h"

namespace spatialjoin {
namespace exec {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int workers : {1, 2, 4, 8}) {
    ThreadPool pool(workers);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&hits](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " with " << workers << " workers";
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleton) {
  ThreadPool pool(2);
  int64_t calls = 0;
  pool.ParallelFor(0, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller — safe to touch caller-local state.
  pool.ParallelFor(1, [&calls](int64_t i) { calls += 10 + i; });
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPoolTest, TaskGroupRunsAllSpawnedTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  {
    ThreadPool::TaskGroup group(&pool);
    for (int i = 0; i < kTasks; ++i) {
      group.Spawn([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    EXPECT_EQ(done.load(), kTasks);
  }
  EXPECT_TRUE(pool.Quiescent());
}

TEST(ThreadPoolTest, StatsConserveTasks) {
  ThreadPool pool(3);
  pool.ParallelFor(500, [](int64_t) {});
  ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.workers, 3);
  EXPECT_TRUE(pool.Quiescent());
  EXPECT_EQ(stats.tasks_submitted, stats.tasks_executed);
  EXPECT_EQ(stats.tasks_queued, 0);
  EXPECT_LE(stats.tasks_stolen, stats.tasks_executed);
}

TEST(ThreadPoolTest, AuditPassesOnQuiescentPool) {
  ThreadPool pool(2);
  pool.ParallelFor(64, [](int64_t) {});
  audit::AuditReport report = audit::AuditThreadPool(pool);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GE(report.checks_run(), 4);
}

TEST(ThreadPoolTest, SingleWorkerPoolMakesProgressWhileCallerWaits) {
  // A 1-worker pool must complete even when the caller immediately waits:
  // the waiting thread helps execute queued tasks.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  ThreadPool::TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.Spawn([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  // External threads sharing one pool: each runs its own ParallelFor and
  // must see exactly its own indices covered.
  ThreadPool pool(4);
  constexpr int kClients = 4;
  constexpr int64_t kN = 300;
  std::vector<std::vector<std::atomic<int>>> hits(kClients);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kN);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &hits, c] {
      pool.ParallelFor(kN, [&hits, c](int64_t i) {
        hits[static_cast<size_t>(c)][static_cast<size_t>(i)].fetch_add(
            1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(c)][static_cast<size_t>(i)].load(),
                1)
          << "client " << c << " index " << i;
    }
  }
  EXPECT_TRUE(pool.Quiescent());
}

}  // namespace
}  // namespace exec
}  // namespace spatialjoin
