#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_validator.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "obs/trace_export.h"

// Sanitized builds run every instruction through shadow-memory checks;
// the overhead budget scales accordingly.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SJ_SPAN_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SJ_SPAN_TEST_SANITIZED 1
#endif
#endif

namespace spatialjoin {
namespace {

using testing_json::IsValidJson;

// All tests share the process-wide tracing state: start from an empty,
// enabled timeline and leave tracing off (the library default) behind.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracing::Reset();
    Tracing::Enable(true);
  }
  void TearDown() override {
    Tracing::Enable(false);
    Tracing::Reset();
    Tracing::SetDefaultRingCapacityForTesting(SpanRing::kDefaultCapacity);
  }
};

// The structural invariants the exporter guarantees per track (tid):
// timestamps monotone non-decreasing, and 'B'/'E' events properly nested
// and balanced, with matching names at each close.
void ExpectRepairedInvariants(const std::vector<ExportedEvent>& events) {
  std::map<int, std::vector<const char*>> open;
  std::map<int, int64_t> last_ts;
  for (const ExportedEvent& e : events) {
    ASSERT_TRUE(e.phase == 'B' || e.phase == 'E' || e.phase == 'i' ||
                e.phase == 'C')
        << "unexpected phase " << e.phase;
    ASSERT_NE(e.name, nullptr);
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts_ns, it->second) << "track " << e.tid << " not monotonic";
    }
    last_ts[e.tid] = e.ts_ns;
    if (e.phase == 'B') {
      open[e.tid].push_back(e.name);
    } else if (e.phase == 'E') {
      ASSERT_FALSE(open[e.tid].empty())
          << "orphan 'E' for " << e.name << " on track " << e.tid;
      EXPECT_STREQ(open[e.tid].back(), e.name);
      open[e.tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "track " << tid << " has "
                               << stack.size() << " unclosed span(s)";
  }
}

TEST_F(SpanTest, ScopedSpanRecordsBalancedPair) {
  {
    SJ_SPAN("unit.outer");
    SJ_SPAN_CAT("unit.inner", "test");
  }
  std::vector<ExportedEvent> events = CollectEvents();
  ASSERT_EQ(events.size(), 4u);
  ExpectRepairedInvariants(events);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_STREQ(events[0].name, "unit.outer");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_STREQ(events[1].name, "unit.inner");
  EXPECT_STREQ(events[1].category, "test");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[3].phase, 'E');
}

TEST_F(SpanTest, DisabledTracingRecordsNothing) {
  Tracing::Enable(false);
  {
    SJ_SPAN("unit.disabled");
    TraceCounter("unit.counter", 7);
    TraceInstant("unit.instant");
  }
  EXPECT_TRUE(CollectEvents().empty());
}

TEST_F(SpanTest, CountersAndInstantsCarryThrough) {
  TraceCounter("unit.queue_depth", 42);
  TraceInstant("unit.tick", "test");
  std::vector<ExportedEvent> events = CollectEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'C');
  EXPECT_EQ(events[0].value, 42);
  EXPECT_EQ(events[1].phase, 'i');
}

TEST_F(SpanTest, OpenSpanGetsSynthesizedEnd) {
  // A span that is still open at snapshot time (a parked worker, an
  // in-flight query) must still export balanced.
  TraceBegin("unit.still_open");
  TraceBegin("unit.nested_open");
  std::vector<ExportedEvent> events = CollectEvents();
  ASSERT_EQ(events.size(), 4u);
  ExpectRepairedInvariants(events);
  // Close what we opened so the shared rings stay balanced for later use.
  TraceEnd("unit.nested_open");
  TraceEnd("unit.still_open");
}

TEST_F(SpanTest, OrphanEndIsDropped) {
  // An 'E' whose 'B' was lost (wraparound ate it) must be discarded, not
  // exported unbalanced.
  span_detail::Record('E', "unit.orphan", nullptr, 0);
  SJ_SPAN("unit.ok");
  std::vector<ExportedEvent> events = CollectEvents();
  ASSERT_EQ(events.size(), 2u);
  ExpectRepairedInvariants(events);
  EXPECT_STREQ(events[0].name, "unit.ok");
}

TEST_F(SpanTest, WraparoundDropsOldestAndStaysBalanced) {
  // A tiny ring on a fresh thread: record far more than capacity and
  // verify the oldest events are dropped (counted, not corrupted) while
  // the export still satisfies every track invariant.
  constexpr size_t kTinyCapacity = 64;
  constexpr int kSpans = 1000;
  Tracing::SetDefaultRingCapacityForTesting(kTinyCapacity);
  uint64_t head = 0;
  uint64_t dropped = 0;
  std::thread worker([&] {
    Tracing::SetThreadName("wrap.worker");
    for (int i = 0; i < kSpans; ++i) {
      SJ_SPAN("unit.wrap");
    }
    SpanRing* ring = Tracing::CurrentThreadRing();
    head = ring->head();
    dropped = ring->dropped();
  });
  worker.join();
  EXPECT_EQ(head, static_cast<uint64_t>(2 * kSpans));
  EXPECT_EQ(dropped, static_cast<uint64_t>(2 * kSpans) - kTinyCapacity);
  EXPECT_GE(TotalDroppedEvents(), static_cast<int64_t>(dropped));

  std::vector<ExportedEvent> events = CollectEvents();
  EXPECT_FALSE(events.empty());
  EXPECT_LE(events.size(), kTinyCapacity);
  ExpectRepairedInvariants(events);
}

TEST_F(SpanTest, ChromeTraceExportIsValidJson) {
  {
    SJ_SPAN_CAT("unit.export", "test");
    TraceCounter("unit.export_counter", 3);
  }
  std::ostringstream out;
  WriteChromeTrace(out);
  std::string doc = out.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc.substr(0, 400);
  // The three structural anchors a Chrome-trace consumer needs.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"process\""), std::string::npos);
}

TEST_F(SpanTest, ChromeTraceExportOfEmptyRingSetIsValidMinimalJson) {
  // Regression pin: exporting with rings registered but no events (never
  // enabled, or just reset) must produce a minimal valid document — in
  // particular no thread_name metadata rows for threads that contribute
  // no events (those rows used to be emitted unconditionally).
  Tracing::Reset();
  std::ostringstream out;
  WriteChromeTrace(out);
  std::string doc = out.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"process\""), std::string::npos);
  EXPECT_EQ(doc.find("\"thread_name\""), std::string::npos)
      << "quiescent rings must not emit thread metadata";
}

TEST_F(SpanTest, MultiThreadedStressExportsEveryTrackRepaired) {
  // Writers hammer their rings while the main thread snapshots
  // concurrently — the reader/writer race the relaxed-atomic slots are
  // designed for. Under TSan this is the test that proves it.
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kIters; ++i) {
        SJ_SPAN("stress.outer");
        SJ_SPAN_CAT("stress.inner", "test");
        if ((i & 63) == 0) TraceCounter("stress.progress", i);
        (void)t;
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int i = 0; i < 50; ++i) {
    std::vector<ExportedEvent> racing = CollectEvents();
    ExpectRepairedInvariants(racing);  // approximate but well-formed
  }
  for (std::thread& w : writers) w.join();
  // Quiescent snapshot: exact, balanced, every writer track present.
  std::vector<ExportedEvent> events = CollectEvents();
  ExpectRepairedInvariants(events);
  std::vector<int> tids;
  for (const ExportedEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_GE(tids.size(), static_cast<size_t>(kThreads));
}

TEST_F(SpanTest, PerEventOverheadStaysWithinBudget) {
  // The contract that lets SJ_SPAN stay compiled into hot loops: one
  // event is a TLS lookup, a clock read, and six stores. The budget is
  // ~50x the measured cost on commodity hardware, so a regression to
  // "takes a lock" or "allocates" trips it while scheduler noise cannot.
#ifdef SJ_SPAN_TEST_SANITIZED
  constexpr double kMaxNsPerEvent = 50000.0;
#else
  constexpr double kMaxNsPerEvent = 5000.0;
#endif
  constexpr int kSpans = 200000;
  (void)Tracing::CurrentThreadRing();  // exclude ring creation
  int64_t start = MonotonicNowNs();
  for (int i = 0; i < kSpans; ++i) {
    SJ_SPAN("overhead.probe");
  }
  int64_t elapsed = MonotonicNowNs() - start;
  double per_event = static_cast<double>(elapsed) / (2.0 * kSpans);
  EXPECT_LT(per_event, kMaxNsPerEvent)
      << "span overhead " << per_event << "ns/event";

  // Disabled tracing must be cheaper still: a single flag check.
  Tracing::Enable(false);
  start = MonotonicNowNs();
  for (int i = 0; i < kSpans; ++i) {
    SJ_SPAN("overhead.disabled");
  }
  elapsed = MonotonicNowNs() - start;
  per_event = static_cast<double>(elapsed) / (2.0 * kSpans);
  EXPECT_LT(per_event, kMaxNsPerEvent)
      << "disabled-path overhead " << per_event << "ns/event";
}

TEST_F(SpanTest, ResetRewindsEveryRing) {
  SJ_SPAN("unit.before_reset");
  EXPECT_FALSE(CollectEvents().empty());
  Tracing::Reset();
  EXPECT_TRUE(CollectEvents().empty());
  EXPECT_EQ(TotalDroppedEvents(), 0);
}

}  // namespace
}  // namespace spatialjoin
