#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/distributions.h"

namespace spatialjoin {
namespace {

TEST(MatchProbabilityTest, Uniform) {
  EXPECT_DOUBLE_EQ(
      MatchProbability(MatchDistribution::kUniform, 0.3, 2, 5, 1), 0.3);
  EXPECT_DOUBLE_EQ(
      MatchProbability(MatchDistribution::kUniform, 0.3, 0, 0, 0), 0.3);
}

TEST(MatchProbabilityTest, NoLoc) {
  // ρ = p^{max(min(i1,i2),1)}.
  EXPECT_DOUBLE_EQ(
      MatchProbability(MatchDistribution::kNoLoc, 0.5, 3, 5, 0), 0.125);
  EXPECT_DOUBLE_EQ(
      MatchProbability(MatchDistribution::kNoLoc, 0.5, 0, 5, 0), 0.5);
  EXPECT_DOUBLE_EQ(
      MatchProbability(MatchDistribution::kNoLoc, 0.5, 1, 1, 0), 0.5);
}

TEST(MatchProbabilityTest, HiLocAncestorsAlwaysMatch) {
  // d2 = 0 (o2 is an ancestor of o1) → probability 1.
  EXPECT_DOUBLE_EQ(
      MatchProbability(MatchDistribution::kHiLoc, 0.1, 5, 2, 2), 1.0);
  // Siblings: d1 = d2 = 1 → p (the paper's σ_i = p).
  EXPECT_DOUBLE_EQ(
      MatchProbability(MatchDistribution::kHiLoc, 0.1, 3, 3, 2), 0.1);
  // Cousins: d1 = d2 = 2 → p^4.
  EXPECT_NEAR(
      MatchProbability(MatchDistribution::kHiLoc, 0.1, 4, 4, 2), 1e-4,
      1e-18);
}

TEST(PiTableTest, UniformIsConstant) {
  PiTable pi(MatchDistribution::kUniform, 6, 10, 0.07);
  for (int i = 0; i <= 6; ++i) {
    for (int j = 0; j <= 6; ++j) {
      EXPECT_DOUBLE_EQ(pi.pi(i, j), 0.07);
    }
  }
}

TEST(PiTableTest, NoLocFollowsFormula) {
  PiTable pi(MatchDistribution::kNoLoc, 6, 10, 0.5);
  EXPECT_DOUBLE_EQ(pi.pi(0, 6), 0.5);
  EXPECT_DOUBLE_EQ(pi.pi(3, 6), std::pow(0.5, 3));
  EXPECT_DOUBLE_EQ(pi.pi(6, 6), std::pow(0.5, 6));
  EXPECT_DOUBLE_EQ(pi.pi(2, 1), 0.5);
}

TEST(PiTableTest, BoundaryConvention) {
  PiTable pi(MatchDistribution::kNoLoc, 6, 10, 0.5);
  EXPECT_DOUBLE_EQ(pi.pi(0, -1), 1.0);
  EXPECT_DOUBLE_EQ(pi.pi(-1, 0), 1.0);
}

TEST(PiTableTest, HiLocProperties) {
  PiTable pi(MatchDistribution::kHiLoc, 6, 10, 0.1);
  // Root pairs always match (the root is everyone's ancestor).
  for (int j = 0; j <= 6; ++j) {
    EXPECT_DOUBLE_EQ(pi.pi(0, j), 1.0);
    EXPECT_DOUBLE_EQ(pi.pi(j, 0), 1.0);
  }
  // Symmetry.
  for (int i = 0; i <= 6; ++i) {
    for (int j = 0; j <= 6; ++j) {
      EXPECT_NEAR(pi.pi(i, j), pi.pi(j, i), 1e-15) << i << "," << j;
    }
  }
  // Probabilities stay in (0, 1].
  for (int i = 0; i <= 6; ++i) {
    for (int j = 0; j <= 6; ++j) {
      EXPECT_GT(pi.pi(i, j), 0.0);
      EXPECT_LE(pi.pi(i, j), 1.0);
    }
  }
  // Deeper pairs are less likely to match (locality decays).
  EXPECT_LT(pi.pi(6, 6), pi.pi(1, 1));
}

TEST(PiTableTest, HiLocLimits) {
  // p → 1: everything matches.
  PiTable all(MatchDistribution::kHiLoc, 4, 8, 1.0);
  for (int i = 0; i <= 4; ++i) {
    for (int j = 0; j <= 4; ++j) {
      EXPECT_DOUBLE_EQ(all.pi(i, j), 1.0);
    }
  }
  // p → 0: only ancestor/descendant pairs survive, k^{−min(i,j)} of the
  // level pairs.
  PiTable none(MatchDistribution::kHiLoc, 4, 8, 0.0);
  EXPECT_DOUBLE_EQ(none.pi(2, 3), std::pow(8.0, -2));
  EXPECT_DOUBLE_EQ(none.pi(4, 4), std::pow(8.0, -4));
}

TEST(PiTableTest, HiLocMatchesDirectEnumerationOnSmallTree) {
  // Exhaustively average ρ over a k=3, n=3 tree and compare with the
  // closed form. Nodes at height j are indexed 0..3^j−1; the ancestor of
  // node x at height a is x / 3^{j−a}.
  const int n = 3;
  const int k = 3;
  const double p = 0.3;
  PiTable pi(MatchDistribution::kHiLoc, n, k, p);
  auto ipow = [](int b, int e) {
    int r = 1;
    for (int i = 0; i < e; ++i) r *= b;
    return r;
  };
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) {
      // Fix o1 as node 0 at height i (symmetry makes the choice free).
      double sum = 0.0;
      for (int x = 0; x < ipow(k, j); ++x) {
        // LCA height: largest a <= min(i,j) with equal ancestors.
        int lca = 0;
        for (int a = std::min(i, j); a >= 0; --a) {
          int anc_o1 = 0;  // node 0's ancestors are all index 0
          int anc_o2 = x / ipow(k, j - a);
          if (anc_o1 == anc_o2) {
            lca = a;
            break;
          }
        }
        sum += MatchProbability(MatchDistribution::kHiLoc, p, i, j, lca);
      }
      double expected = sum / ipow(k, j);
      EXPECT_NEAR(pi.pi(i, j), expected, 1e-12) << i << "," << j;
    }
  }
}

TEST(PiTableTest, SigmaMatchesPaper) {
  PiTable uniform(MatchDistribution::kUniform, 6, 10, 0.2);
  PiTable noloc(MatchDistribution::kNoLoc, 6, 10, 0.2);
  PiTable hiloc(MatchDistribution::kHiLoc, 6, 10, 0.2);
  EXPECT_DOUBLE_EQ(uniform.sigma(3), 0.2);
  EXPECT_DOUBLE_EQ(noloc.sigma(3), std::pow(0.2, 3));
  EXPECT_DOUBLE_EQ(noloc.sigma(1), 0.2);
  EXPECT_DOUBLE_EQ(hiloc.sigma(3), 0.2);  // σ_i = p for HI-LOC
}

TEST(DistributionNameTest, Names) {
  EXPECT_STREQ(MatchDistributionName(MatchDistribution::kUniform),
               "UNIFORM");
  EXPECT_STREQ(MatchDistributionName(MatchDistribution::kNoLoc), "NO-LOC");
  EXPECT_STREQ(MatchDistributionName(MatchDistribution::kHiLoc), "HI-LOC");
}

}  // namespace
}  // namespace spatialjoin
