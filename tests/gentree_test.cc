#include <gtest/gtest.h>

#include "core/memory_gentree.h"
#include "relational/relation.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"

namespace spatialjoin {
namespace {

TEST(MemoryGenTreeTest, BuildAndNavigate) {
  MemoryGenTree tree;
  NodeId root = tree.AddNode(kInvalidNodeId, Value(Rectangle(0, 0, 10, 10)),
                             kInvalidTupleId, "world");
  NodeId left = tree.AddNode(root, Value(Rectangle(0, 0, 5, 10)), 0, "west");
  NodeId right = tree.AddNode(root, Value(Rectangle(5, 0, 10, 10)), 1,
                              "east");
  NodeId leaf = tree.AddNode(left, Value(Rectangle(1, 1, 2, 2)), 2, "town");

  EXPECT_EQ(tree.root(), root);
  EXPECT_EQ(tree.height(), 2);
  EXPECT_EQ(tree.HeightOf(root), 0);
  EXPECT_EQ(tree.HeightOf(leaf), 2);
  EXPECT_EQ(tree.Children(root), (std::vector<NodeId>{left, right}));
  EXPECT_TRUE(tree.Children(leaf).empty());
  EXPECT_EQ(tree.ParentOf(leaf), left);
  EXPECT_EQ(tree.LabelOf(right), "east");
  EXPECT_EQ(tree.num_nodes(), 4);
  EXPECT_FALSE(tree.IsApplicationNode(root));  // no tuple
  EXPECT_TRUE(tree.IsApplicationNode(leaf));
  EXPECT_EQ(tree.TupleOf(leaf), 2);
  EXPECT_EQ(tree.MbrOf(left), Rectangle(0, 0, 5, 10));
  EXPECT_TRUE(tree.ValidateContainment());
}

TEST(MemoryGenTreeDeathTest, RejectsEscapingChild) {
  MemoryGenTree tree;
  NodeId root = tree.AddNode(kInvalidNodeId, Value(Rectangle(0, 0, 5, 5)));
  EXPECT_DEATH(tree.AddNode(root, Value(Rectangle(4, 4, 6, 6))),
               "not contained");
}

TEST(MemoryGenTreeTest, InsertByContainmentDescends) {
  MemoryGenTree tree;
  NodeId root = tree.AddNode(kInvalidNodeId, Value(Rectangle(0, 0, 16, 16)));
  NodeId q1 = tree.AddNode(root, Value(Rectangle(0, 0, 8, 8)), 1);
  tree.AddNode(root, Value(Rectangle(8, 0, 16, 8)), 2);
  NodeId q11 = tree.AddNode(q1, Value(Rectangle(0, 0, 4, 4)), 3);

  int64_t tests = 0;
  NodeId inserted =
      tree.InsertByContainment(Value(Rectangle(1, 1, 2, 2)), 99, &tests);
  EXPECT_EQ(tree.ParentOf(inserted), q11);
  EXPECT_EQ(tree.HeightOf(inserted), 3);
  EXPECT_GT(tests, 0);
  EXPECT_TRUE(tree.ValidateContainment());

  // An object spanning quadrants stays directly below the root.
  NodeId spanning =
      tree.InsertByContainment(Value(Rectangle(6, 6, 10, 10)), 100);
  EXPECT_EQ(tree.ParentOf(spanning), root);
}

TEST(MemoryGenTreeTest, GeometryReadsFromAttachedRelation) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 64);
  Schema schema({{"id", ValueType::kInt64},
                 {"area", ValueType::kRectangle}});
  Relation rel("r", schema, &pool, RelationLayout::kHeap,
               /*pad_tuples_to=*/300);
  TupleId t0 =
      rel.Insert(Tuple({Value(int64_t{0}), Value(Rectangle(0, 0, 4, 4))}));

  MemoryGenTree tree;
  NodeId root = tree.AddNode(kInvalidNodeId, Value(Rectangle(0, 0, 10, 10)));
  NodeId node = tree.AddNode(root, Value(Rectangle(0, 0, 4, 4)), t0);
  tree.AttachRelation(&rel, 1);

  ASSERT_TRUE(pool.Clear().ok());
  int64_t reads_before = disk.stats().page_reads;
  Value geom = tree.Geometry(node);
  EXPECT_EQ(geom.AsRectangle(), Rectangle(0, 0, 4, 4));
  EXPECT_GT(disk.stats().page_reads, reads_before);  // paid tuple I/O
  // Technical nodes stay in memory: no additional reads.
  int64_t reads_mid = disk.stats().page_reads;
  (void)tree.Geometry(root);
  EXPECT_EQ(disk.stats().page_reads, reads_mid);
}

TEST(HierarchyGeneratorTest, BuildsBalancedTree) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);
  HierarchyOptions options;
  options.height = 3;
  options.fanout = 4;
  GeneratedHierarchy h = GenerateHierarchy(
      Rectangle(0, 0, 100, 100), options, &pool, RelationLayout::kClustered);
  // N = 1 + 4 + 16 + 64 = 85 nodes, all application objects.
  EXPECT_EQ(h.tree->num_nodes(), 85);
  EXPECT_EQ(h.relation->num_tuples(), 85);
  EXPECT_EQ(h.tree->height(), 3);
  EXPECT_TRUE(h.tree->ValidateContainment());
  EXPECT_EQ(h.tree->Children(h.tree->root()).size(), 4u);
  EXPECT_TRUE(h.tree->IsApplicationNode(h.tree->root()));
}

TEST(HierarchyGeneratorTest, ShuffledStorageKeepsLogicalStructure) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);
  HierarchyOptions options;
  options.height = 2;
  options.fanout = 3;
  GeneratedHierarchy ordered = GenerateHierarchy(
      Rectangle(0, 0, 10, 10), options, &pool, RelationLayout::kHeap,
      /*pad_tuples_to=*/0, /*shuffle_storage_order=*/false);
  GeneratedHierarchy shuffled = GenerateHierarchy(
      Rectangle(0, 0, 10, 10), options, &pool, RelationLayout::kHeap,
      /*pad_tuples_to=*/0, /*shuffle_storage_order=*/true);
  EXPECT_EQ(ordered.tree->num_nodes(), shuffled.tree->num_nodes());
  // Same geometry per logical node regardless of physical order.
  for (NodeId n = 0; n < ordered.tree->num_nodes(); ++n) {
    EXPECT_EQ(ordered.tree->MbrOf(n), shuffled.tree->MbrOf(n));
  }
}

}  // namespace
}  // namespace spatialjoin
