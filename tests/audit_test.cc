#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "audit/audit_hook.h"
#include "audit/audit_report.h"
#include "audit/btree_audit.h"
#include "audit/bufferpool_audit.h"
#include "audit/gentree_audit.h"
#include "audit/heap_audit.h"
#include "audit/rtree_audit.h"
#include "audit/theta_audit.h"
#include "btree/bplus_tree.h"
#include "common/random.h"
#include "core/memory_gentree.h"
#include "core/theta_ops.h"
#include "geometry/rectangle.h"
#include "obs/metrics.h"
#include "relational/value.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : disk_(2000), pool_(&disk_, 256) {}
  DiskManager disk_;
  BufferPool pool_;
};

// ---------------------------------------------------------------------------
// AuditReport plumbing.
// ---------------------------------------------------------------------------

TEST(AuditReportTest, CountsAndSeverities) {
  audit::AuditReport report("unit");
  EXPECT_TRUE(report.ok());
  report.CountCheck(3);
  report.AddError("root/entry[1]", "broken");
  report.AddWarning("root", "untidy");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.checks_run(), 3);
  EXPECT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.warning_count(), 1);
  std::string text = report.ToString();
  EXPECT_NE(text.find("error at root/entry[1]: broken"), std::string::npos);
  EXPECT_NE(text.find("warning at root: untidy"), std::string::npos);
}

TEST(AuditReportTest, MergePrefixesPaths) {
  audit::AuditReport inner("page");
  inner.CountCheck();
  inner.AddError("slot[2]", "overrun");
  audit::AuditReport outer("file");
  outer.Merge(inner, "page[7]/");
  ASSERT_EQ(outer.violations().size(), 1u);
  EXPECT_EQ(outer.violations()[0].path, "page[7]/slot[2]");
  EXPECT_EQ(outer.checks_run(), 1);
}

TEST(AuditReportTest, FinishPublishesCounterFamily) {
  MetricsRegistry::Global().ResetAll();
  audit::AuditReport report("unit");
  report.AddError("root", "x");
  report.Finish();
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("audit.runs"), 1);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("audit.violations"), 1);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("audit.unit.runs"), 1);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("audit.unit.violations"),
            1);
}

TEST(AuditReportTest, JsonShape) {
  audit::AuditReport report("unit");
  report.CountCheck();
  report.AddError("root", "bad \"quote\"");
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"subject\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"checks_run\": 1"), std::string::npos);
  EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// R-tree auditor.
// ---------------------------------------------------------------------------

TEST_F(AuditTest, RTreeEmptyTreeIsClean) {
  RTree tree(&pool_, RTreeSplit::kQuadratic, 8);
  audit::AuditReport report = audit::AuditRTree(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks_run(), 0);
}

TEST_F(AuditTest, RTreeSingleEntryIsClean) {
  RTree tree(&pool_, RTreeSplit::kQuadratic, 8);
  tree.Insert(Rectangle(1, 1, 2, 2), 42);
  audit::AuditReport report = audit::AuditRTree(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(AuditTest, RTreeBulkAndIncrementalAreClean) {
  RTree tree(&pool_, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 11);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(gen.NextRect(1, 30), i);
  }
  audit::AuditReport report = audit::AuditRTree(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GE(tree.height(), 2);
}

TEST_F(AuditTest, RTreeCorruptedInteriorMbrIsDetectedWithPath) {
  RTree tree(&pool_, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 13);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(gen.NextRect(1, 30), i);
  }
  ASSERT_GE(tree.height(), 2);
  // Shrink the root's first entry to a sliver: the child subtree is no
  // longer contained in its parent entry — the PART-OF break that makes
  // Θ-pruning unsound.
  tree.CorruptEntryMbrForTest(tree.root_page(), 0,
                              Rectangle(0, 0, 0.5, 0.5));
  audit::AuditReport report = audit::AuditRTree(tree);
  ASSERT_FALSE(report.ok());
  EXPECT_GT(report.error_count(), 0);
  bool found_path = false;
  for (const audit::Violation& v : report.violations()) {
    if (v.path.find("root/child[0]") != std::string::npos &&
        v.message.find("PART-OF") != std::string::npos) {
      found_path = true;
    }
  }
  EXPECT_TRUE(found_path) << report.ToString();
}

TEST_F(AuditTest, RTreeLeafEntryEscapingParentIsDetected) {
  RTree tree(&pool_, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 19);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(gen.NextRect(1, 30), i);
  }
  ASSERT_GE(tree.height(), 2);
  // Opposite direction from the test above: leave the parent entry alone
  // and move a *leaf* entry outside the world, escaping every ancestor.
  RTree::NodeView root = tree.ReadNode(tree.root_page());
  ASSERT_FALSE(root.is_leaf);
  PageId child = root.payloads[0];
  tree.CorruptEntryMbrForTest(child, 0, Rectangle(5000, 5000, 5001, 5001));
  audit::AuditReport report = audit::AuditRTree(tree);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const audit::Violation& v : report.violations()) {
    if (v.path.find("root/child[0]") != std::string::npos &&
        v.path.find("entry[0]") != std::string::npos &&
        v.message.find("PART-OF") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(AuditTest, RTreeUntightParentMbrIsAWarningOnly) {
  RTree tree(&pool_, RTreeSplit::kQuadratic, 4);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 17);
  for (int i = 0; i < 40; ++i) {
    tree.Insert(gen.NextRect(1, 20), i);
  }
  ASSERT_GE(tree.height(), 2);
  // Inflate the root's first entry: still contains the child, not tight.
  tree.CorruptEntryMbrForTest(tree.root_page(), 0,
                              Rectangle(-10, -10, 2000, 2000));
  audit::AuditReport report = audit::AuditRTree(tree);
  EXPECT_EQ(report.error_count(), 0) << report.ToString();
  EXPECT_GT(report.warning_count(), 0);
}

// ---------------------------------------------------------------------------
// B⁺-tree auditor.
// ---------------------------------------------------------------------------

TEST_F(AuditTest, BPlusTreeEmptyAndSingleLeafAreClean) {
  BPlusTree empty(&pool_, 4, 4);
  audit::AuditReport report = audit::AuditBPlusTree(empty);
  EXPECT_TRUE(report.ok()) << report.ToString();

  BPlusTree one(&pool_, 4, 4);
  one.Insert(7, 70);
  report = audit::AuditBPlusTree(one);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(AuditTest, BPlusTreeWithDuplicatesIsClean) {
  BPlusTree tree(&pool_, 4, 4);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(rng.NextUint64(40), static_cast<uint64_t>(i));
  }
  ASSERT_GE(tree.height(), 2);
  audit::AuditReport report = audit::AuditBPlusTree(tree);
  EXPECT_EQ(report.error_count(), 0) << report.ToString();
}

TEST_F(AuditTest, BPlusTreeCorruptedLeafKeyIsDetectedWithPath) {
  BPlusTree tree(&pool_, 4, 4);
  for (uint64_t k = 0; k < 64; ++k) {
    tree.Insert(k, k * 10);
  }
  ASSERT_GE(tree.height(), 2);
  // Find the leftmost leaf and wrench its first key far right: it now
  // violates both in-node order and the root separator bounds.
  PageId pid = tree.root_page();
  for (;;) {
    BPlusTree::NodeView node = tree.ReadNode(pid);
    if (node.is_leaf) break;
    pid = node.children.front();
  }
  tree.CorruptKeyForTest(pid, 0, 9999);
  audit::AuditReport report = audit::AuditBPlusTree(tree);
  ASSERT_FALSE(report.ok());
  bool found_path = false;
  for (const audit::Violation& v : report.violations()) {
    if (v.path.find("key[0]") != std::string::npos &&
        v.message.find("separator bounds") != std::string::npos) {
      found_path = true;
    }
  }
  EXPECT_TRUE(found_path) << report.ToString();
}

TEST_F(AuditTest, BPlusTreeLazyDeletionUnderflowIsAWarningOnly) {
  BPlusTree tree(&pool_, 4, 4);
  for (uint64_t k = 0; k < 32; ++k) {
    tree.Insert(k, k);
  }
  // Lazy deletion may empty leaves without rebalancing; the audit must
  // not call that corruption.
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(tree.Delete(k, k));
  }
  audit::AuditReport report = audit::AuditBPlusTree(tree);
  EXPECT_EQ(report.error_count(), 0) << report.ToString();
}

// ---------------------------------------------------------------------------
// Heap file / slotted page auditor.
// ---------------------------------------------------------------------------

TEST_F(AuditTest, HeapFileInsertsAndDeletesAreClean) {
  HeapFile file(&pool_);
  std::vector<RecordId> rids;
  for (int i = 0; i < 200; ++i) {
    rids.push_back(file.Insert(std::string(static_cast<size_t>(i % 97), 'x')));
  }
  for (size_t i = 0; i < rids.size(); i += 3) {
    ASSERT_TRUE(file.Delete(rids[i]));
  }
  audit::AuditReport report = audit::AuditHeapFile(file);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(AuditTest, SlottedPageCorruptedSlotIsDetected) {
  HeapFile file(&pool_);
  RecordId rid = file.Insert("hello slotted world");
  // Point the slot's offset into the slot directory itself.
  Page* page = pool_.GetMutablePage(rid.page_id);
  uint16_t bad_offset = 2;
  std::memcpy(page->bytes() + 4 + 4 * rid.slot, &bad_offset,
              sizeof(bad_offset));
  audit::AuditReport report = audit::AuditHeapFile(file);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("slot[0]"), std::string::npos)
      << report.ToString();
}

TEST_F(AuditTest, SlottedPageCorruptedFreeEndIsDetected) {
  HeapFile file(&pool_);
  RecordId rid = file.Insert("record");
  Page* page = pool_.GetMutablePage(rid.page_id);
  uint16_t bad_free_end = 1;  // inside the header/slot directory
  std::memcpy(page->bytes() + 2, &bad_free_end, sizeof(bad_free_end));
  audit::AuditReport report = audit::AuditHeapFile(file);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("free_end"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Buffer pool auditor.
// ---------------------------------------------------------------------------

TEST_F(AuditTest, BufferPoolUnderPressureIsClean) {
  DiskManager disk(512);
  BufferPool small(&disk, 4);
  std::vector<PageId> pages;
  for (int i = 0; i < 16; ++i) {
    pages.push_back(small.NewPage());
  }
  for (int round = 0; round < 3; ++round) {
    for (PageId pid : pages) {
      small.GetPage(pid);
    }
  }
  EXPECT_GT(small.stats().evictions, 0);
  audit::AuditReport report = audit::AuditBufferPool(small);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------------
// Generalization-tree auditor.
// ---------------------------------------------------------------------------

TEST(GenTreeAuditTest, SingleNodeAndFanout1ChainAreClean) {
  MemoryGenTree single;
  single.AddNode(kInvalidNodeId, Value(Rectangle(0, 0, 10, 10)));
  audit::AuditReport report = audit::AuditGenTree(single);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Degenerate fanout-1 chain: root ⊇ mid ⊇ leaf, one child each.
  MemoryGenTree chain;
  NodeId root = chain.AddNode(kInvalidNodeId, Value(Rectangle(0, 0, 10, 10)));
  NodeId mid = chain.AddNode(root, Value(Rectangle(1, 1, 9, 9)));
  chain.AddNode(mid, Value(Rectangle(2, 2, 8, 8)), TupleId{7});
  report = audit::AuditGenTree(chain);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(GenTreeAuditTest, RTreeAdapterIsClean) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 128);
  RTree rtree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 23);
  for (int i = 0; i < 120; ++i) {
    rtree.Insert(gen.NextRect(1, 25), i);
  }
  RTreeGenTree adapter(&rtree, nullptr, 0);
  audit::AuditReport report = audit::AuditGenTree(adapter);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(GenTreeAuditTest, CorruptedRTreeSurfacesInAdapterAudit) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 128);
  RTree rtree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 29);
  for (int i = 0; i < 120; ++i) {
    rtree.Insert(gen.NextRect(1, 25), i);
  }
  ASSERT_GE(rtree.height(), 2);
  rtree.CorruptEntryMbrForTest(rtree.root_page(), 0, Rectangle(0, 0, 1, 1));
  RTreeGenTree adapter(&rtree, nullptr, 0);
  audit::AuditReport report = audit::AuditGenTree(adapter);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("PART-OF"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Θ-soundness checker (small samples here; the 10⁵-pair acceptance run
// lives in theta_soundness_test.cc).
// ---------------------------------------------------------------------------

TEST(ThetaAuditTest, Table1OperatorsSoundOnSmallSample) {
  audit::ThetaSoundnessOptions options;
  options.pairs = 3000;
  audit::AuditReport report = audit::AuditTable1Operators(options);
  EXPECT_EQ(report.error_count(), 0) << report.ToString();
}

// A Θ that ignores its θ: every θ-match must be reported as a witness.
class BrokenUpperOp : public ThetaOperator {
 public:
  std::string name() const override { return "broken_upper"; }
  bool Theta(const Value& a, const Value& b) const override {
    return GeometriesOverlap(a, b);
  }
  bool ThetaUpper(const Rectangle&, const Rectangle&) const override {
    return false;  // prunes everything, including true matches
  }
};

TEST(ThetaAuditTest, UnsoundOperatorProducesWitnesses) {
  BrokenUpperOp broken;
  audit::ThetaSoundnessOptions options;
  options.pairs = 2000;
  audit::AuditReport report = audit::AuditThetaSoundness(broken, options);
  ASSERT_FALSE(report.ok());
  EXPECT_GT(report.error_count(), 0);
  EXPECT_NE(report.ToString().find("θ holds but Θ prunes"),
            std::string::npos);
  EXPECT_NE(report.ToString().find("pair "), std::string::npos);
}

// ---------------------------------------------------------------------------
// SJ_AUDIT_LEVEL hook.
// ---------------------------------------------------------------------------

TEST_F(AuditTest, HookIsNoOpWhenOff) {
  audit::SetAuditLevel(audit::AuditLevel::kOff);
  RTree tree(&pool_, RTreeSplit::kQuadratic, 8);
  for (int i = 0; i < 50; ++i) {
    tree.Insert(Rectangle(i, i, i + 1, i + 1), i);
  }
  tree.CorruptEntryMbrForTest(tree.root_page(), 0, Rectangle(0, 0, 0.1, 0.1));
  audit::MaybeAudit(tree);  // must not abort
  audit::SetAuditLevel(audit::AuditLevel::kOff);
}

TEST_F(AuditTest, HookAbortsOnCorruptionWhenParanoid) {
  RTree tree(&pool_, RTreeSplit::kQuadratic, 8);
  for (int i = 0; i < 50; ++i) {
    tree.Insert(Rectangle(i, i, i + 1, i + 1), i);
  }
  ASSERT_GE(tree.height(), 2);
  tree.CorruptEntryMbrForTest(tree.root_page(), 0, Rectangle(0, 0, 0.1, 0.1));
  audit::SetAuditLevel(audit::AuditLevel::kParanoid);
  EXPECT_DEATH(audit::MaybeAudit(tree), "PART-OF");
  audit::SetAuditLevel(audit::AuditLevel::kOff);
}

TEST_F(AuditTest, BasicLevelSkipsParanoidHooks) {
  audit::SetAuditLevel(audit::AuditLevel::kBasic);
  EXPECT_TRUE(audit::AuditEnabled(audit::AuditLevel::kBasic));
  EXPECT_FALSE(audit::AuditEnabled(audit::AuditLevel::kParanoid));
  audit::SetAuditLevel(audit::AuditLevel::kOff);
}

}  // namespace
}  // namespace spatialjoin
