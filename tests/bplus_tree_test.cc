#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace spatialjoin {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : disk_(2000), pool_(&disk_, 256) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  BPlusTree tree(&pool_);
  EXPECT_EQ(tree.num_entries(), 0);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Lookup(42).empty());
}

TEST_F(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree(&pool_);
  tree.Insert(10, 100);
  tree.Insert(20, 200);
  tree.Insert(10, 101);  // duplicate key
  EXPECT_EQ(tree.num_entries(), 3);
  std::vector<uint64_t> v10 = tree.Lookup(10);
  EXPECT_EQ(v10.size(), 2u);
  EXPECT_EQ(tree.Lookup(20), std::vector<uint64_t>{200});
  EXPECT_TRUE(tree.Lookup(30).empty());
}

TEST_F(BPlusTreeTest, GrowsInHeight) {
  BPlusTree tree(&pool_, /*max_leaf_entries=*/4, /*max_internal=*/4);
  for (uint64_t i = 0; i < 200; ++i) tree.Insert(i, i * 10);
  EXPECT_GE(tree.height(), 3);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_EQ(tree.Lookup(i), std::vector<uint64_t>{i * 10}) << i;
  }
}

TEST_F(BPlusTreeTest, RangeScanOrdered) {
  BPlusTree tree(&pool_, 4, 4);
  for (uint64_t i = 100; i > 0; --i) tree.Insert(i, i);
  std::vector<uint64_t> keys;
  tree.ScanRange(25, 75, [&](uint64_t k, uint64_t) { keys.push_back(k); });
  ASSERT_EQ(keys.size(), 51u);
  for (size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(keys[i], 25 + i);
}

TEST_F(BPlusTreeTest, DuplicatesAcrossLeafSplits) {
  BPlusTree tree(&pool_, 4, 4);
  // 30 duplicates of one key forces the run to span several leaves.
  for (uint64_t v = 0; v < 30; ++v) tree.Insert(7, v);
  tree.Insert(3, 33);
  tree.Insert(9, 99);
  std::vector<uint64_t> values = tree.Lookup(7);
  EXPECT_EQ(values.size(), 30u);
  std::set<uint64_t> distinct(values.begin(), values.end());
  EXPECT_EQ(distinct.size(), 30u);
}

TEST_F(BPlusTreeTest, DeleteRemovesOneOccurrence) {
  BPlusTree tree(&pool_, 4, 4);
  tree.Insert(5, 50);
  tree.Insert(5, 51);
  EXPECT_TRUE(tree.Delete(5, 50));
  EXPECT_EQ(tree.Lookup(5), std::vector<uint64_t>{51});
  EXPECT_FALSE(tree.Delete(5, 50));  // already gone
  EXPECT_TRUE(tree.Delete(5, 51));
  EXPECT_TRUE(tree.Lookup(5).empty());
  EXPECT_EQ(tree.num_entries(), 0);
}

TEST_F(BPlusTreeTest, DeleteDuplicateSpanningLeaves) {
  BPlusTree tree(&pool_, 4, 4);
  for (uint64_t v = 0; v < 20; ++v) tree.Insert(7, v);
  // Delete every copy; each must be found even across leaf boundaries.
  for (uint64_t v = 0; v < 20; ++v) {
    EXPECT_TRUE(tree.Delete(7, v)) << v;
  }
  EXPECT_TRUE(tree.Lookup(7).empty());
}

TEST_F(BPlusTreeTest, ScanAllIsSorted) {
  BPlusTree tree(&pool_, 4, 4);
  Rng rng(99);
  for (int i = 0; i < 300; ++i) tree.Insert(rng.NextUint64(1000), 0);
  uint64_t prev = 0;
  int count = 0;
  tree.ScanAll([&](uint64_t k, uint64_t) {
    EXPECT_GE(k, prev);
    prev = k;
    ++count;
  });
  EXPECT_EQ(count, 300);
}

TEST_F(BPlusTreeTest, MaxLeafEntriesModelsPaperZ) {
  // The paper's z = 100 join-index entries per page.
  BPlusTree tree(&pool_, 100, 100);
  for (uint64_t i = 0; i < 100; ++i) tree.Insert(i, i);
  EXPECT_EQ(tree.num_leaf_pages(), 1);
  tree.Insert(100, 100);
  EXPECT_EQ(tree.num_leaf_pages(), 2);
}

// Property test: random interleaving of inserts and deletes matches a
// std::multimap reference.
TEST_F(BPlusTreeTest, RandomOperationsMatchReference) {
  BPlusTree tree(&pool_, 6, 6);
  std::multimap<uint64_t, uint64_t> reference;
  Rng rng(4242);
  for (int op = 0; op < 3000; ++op) {
    uint64_t key = rng.NextUint64(200);
    if (reference.empty() || rng.NextBernoulli(0.65)) {
      uint64_t value = rng.NextUint64(1000);
      tree.Insert(key, value);
      reference.emplace(key, value);
    } else {
      // Delete a random existing pair.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(
                           rng.NextUint64(reference.size())));
      EXPECT_TRUE(tree.Delete(it->first, it->second));
      reference.erase(it);
    }
  }
  EXPECT_EQ(tree.num_entries(),
            static_cast<int64_t>(reference.size()));
  // Full content comparison via ScanAll (multiset semantics per key).
  std::multimap<uint64_t, uint64_t> scanned;
  tree.ScanAll([&](uint64_t k, uint64_t v) { scanned.emplace(k, v); });
  // Compare as sorted multisets of pairs.
  std::vector<std::pair<uint64_t, uint64_t>> a(scanned.begin(),
                                               scanned.end());
  std::vector<std::pair<uint64_t, uint64_t>> b(reference.begin(),
                                               reference.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace spatialjoin
