#include <gtest/gtest.h>

#include <set>

#include "core/local_join_index.h"
#include "core/nested_loop.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

class LocalJoinIndexTest : public ::testing::Test {
 protected:
  LocalJoinIndexTest() : disk_(2000), pool_(&disk_, 1024) {}

  // A leaf-only hierarchy: interior nodes are technical so every
  // application object sits at the partition height or below.
  GeneratedHierarchy MakeLeafHierarchy(int height, int fanout,
                                       uint64_t seed) {
    HierarchyOptions options;
    options.height = height;
    options.fanout = fanout;
    options.seed = seed;
    GeneratedHierarchy h = GenerateHierarchy(
        Rectangle(0, 0, 200, 200), options, &pool_,
        RelationLayout::kClustered);
    return h;
  }

  DiskManager disk_;
  BufferPool pool_;
};

// Builds a tree whose application objects are only the leaves by copying
// a generated hierarchy and dropping tuple links above `height`.
std::unique_ptr<MemoryGenTree> LeafOnlyCopy(const MemoryGenTree& src,
                                            int app_height) {
  auto out = std::make_unique<MemoryGenTree>();
  // BFS over src so parents precede children; node ids map 1:1 because
  // MemoryGenTree assigns ids in insertion order.
  for (NodeId n = 0; n < src.num_nodes(); ++n) {
    NodeId parent = src.ParentOf(n);
    TupleId tuple = src.HeightOf(n) >= app_height ? src.TupleOf(n)
                                                  : kInvalidTupleId;
    out->AddNode(parent, src.Geometry(n), tuple, src.LabelOf(n));
  }
  return out;
}

TEST_F(LocalJoinIndexTest, SelfJoinMatchesGroundTruth) {
  GeneratedHierarchy h = MakeLeafHierarchy(3, 3, 42);
  auto tree = LeafOnlyCopy(*h.tree, 2);  // application objects at h>=2
  OverlapsOp op;
  LocalJoinIndex index(&pool_, tree.get(), /*partition_height=*/1, 100);
  int64_t build_tests = index.Build(op);
  EXPECT_GT(build_tests, 0);

  JoinResult result = index.Execute(op);
  // Ground truth: ordered pairs of distinct application tuples.
  MatchSet truth;
  for (NodeId a = 0; a < tree->num_nodes(); ++a) {
    if (!tree->IsApplicationNode(a)) continue;
    for (NodeId b = 0; b < tree->num_nodes(); ++b) {
      if (b == a || !tree->IsApplicationNode(b)) continue;
      if (op.Theta(tree->Geometry(a), tree->Geometry(b))) {
        truth.insert({tree->TupleOf(a), tree->TupleOf(b)});
      }
    }
  }
  EXPECT_EQ(MatchSet(result.matches.begin(), result.matches.end()), truth);
  EXPECT_FALSE(truth.empty());
}

TEST_F(LocalJoinIndexTest, PartitionCountMatchesFanout) {
  GeneratedHierarchy h = MakeLeafHierarchy(3, 4, 43);
  auto tree = LeafOnlyCopy(*h.tree, 2);
  OverlapsOp op;
  LocalJoinIndex index(&pool_, tree.get(), 1, 100);
  index.Build(op);
  EXPECT_EQ(index.num_partitions(), 4);
  EXPECT_GT(index.num_indexed_pairs(), 0);
}

TEST_F(LocalJoinIndexTest, UpdateCostIsPartitionLocal) {
  GeneratedHierarchy h = MakeLeafHierarchy(3, 4, 44);
  auto tree = LeafOnlyCopy(*h.tree, 2);
  OverlapsOp op;
  LocalJoinIndex index(&pool_, tree.get(), 1, 100);
  index.Build(op);
  // An object inside one partition is tested only against that
  // partition's members — far fewer than all application objects.
  int64_t app_objects = 4 * (4 + 16);  // heights 2 and 3 under 4 roots
  // Inside the first partition's (shrunken) cell.
  Rectangle small(20, 20, 25, 25);
  int64_t cost = index.UpdateCost(small);
  EXPECT_GT(cost, 0);
  EXPECT_LT(cost, app_objects);
  EXPECT_EQ(cost, app_objects / 4);  // exactly one partition's members
}

TEST_F(LocalJoinIndexTest, RejectsShallowApplicationObjects) {
  GeneratedHierarchy h = MakeLeafHierarchy(2, 3, 45);
  // Every node is an application object, including the root above the
  // partition height — Build must refuse.
  OverlapsOp op;
  LocalJoinIndex index(&pool_, h.tree.get(), 1, 100);
  EXPECT_DEATH(index.Build(op), "application object above");
}

}  // namespace
}  // namespace spatialjoin
