#include <gtest/gtest.h>

#include <vector>

#include "costmodel/join_cost.h"
#include "costmodel/parameters.h"
#include "costmodel/report.h"
#include "costmodel/select_cost.h"
#include "costmodel/update_cost.h"

namespace spatialjoin {
namespace {

TEST(ParametersTest, Table3DerivedValues) {
  ModelParameters params = PaperParameters();
  EXPECT_EQ(params.n, 6);
  EXPECT_EQ(params.k, 10);
  EXPECT_EQ(params.v, 300);
  EXPECT_DOUBLE_EQ(params.l, 0.75);
  EXPECT_EQ(params.h, 6);
  EXPECT_EQ(params.s, 2000);
  EXPECT_EQ(params.z, 100);
  EXPECT_EQ(params.M, 4000);
  // The paper's derived values: N = 1,111,111, m = 5, d = 4.
  EXPECT_EQ(params.N(), 1111111);
  EXPECT_EQ(params.m(), 5);
  EXPECT_EQ(params.d(), 4);
  EXPECT_EQ(params.RelationPages(), 222223);
}

TEST(UpdateCostTest, OrderingMatchesPaper) {
  ModelParameters params = PaperParameters();
  UpdateCosts costs = ComputeUpdateCosts(params);
  // §4.2 / §5: U_I = 0; clustered ≤ unclustered trees; the join index is
  // "almost prohibitively high" — orders of magnitude above the trees.
  EXPECT_DOUBLE_EQ(costs.u_i, 0.0);
  EXPECT_GT(costs.u_iib, 0.0);
  EXPECT_LE(costs.u_iib, costs.u_iia);
  EXPECT_GT(costs.u_iii, 100.0 * costs.u_iia);
}

TEST(UpdateCostTest, JoinIndexCostScalesWithT) {
  ModelParameters params = PaperParameters();
  UpdateCosts base = ComputeUpdateCosts(params);
  params.T *= 10;
  UpdateCosts bigger = ComputeUpdateCosts(params);
  EXPECT_NEAR(bigger.u_iii / base.u_iii, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(bigger.u_iia, base.u_iia);  // tree costs unaffected
}

class SelectCostTest
    : public ::testing::TestWithParam<MatchDistribution> {};

TEST_P(SelectCostTest, BasicSanity) {
  ModelParameters params = PaperParameters();
  for (double p : LogSpace(1e-4, 1.0, 9)) {
    params.p = p;
    SelectCosts costs = ComputeSelectCosts(params, GetParam());
    EXPECT_GT(costs.c_i, 0.0);
    EXPECT_GT(costs.c_iia, 0.0);
    EXPECT_GT(costs.c_iib, 0.0);
    EXPECT_GT(costs.c_iii, 0.0);
    // Shared computation term never exceeds the full strategy costs.
    EXPECT_LE(costs.c_ii_compute, costs.c_iia + 1e-9);
    EXPECT_LE(costs.c_ii_compute, costs.c_iib + 1e-9);
    // Clustering can only reduce I/O.
    EXPECT_LE(costs.c_iib, costs.c_iia + 1e-9);
  }
}

TEST_P(SelectCostTest, ExhaustiveSearchNeverCompetitive) {
  // The paper: "the nested loop or exhaustive search strategy is never
  // really competitive" for selections.
  ModelParameters params = PaperParameters();
  for (double p : LogSpace(1e-4, 0.5, 7)) {
    params.p = p;
    SelectCosts costs = ComputeSelectCosts(params, GetParam());
    EXPECT_GT(costs.c_i, costs.c_iib);
  }
}

TEST_P(SelectCostTest, CostsGrowWithSelectivity) {
  ModelParameters params = PaperParameters();
  params.p = 0.001;
  SelectCosts low = ComputeSelectCosts(params, GetParam());
  params.p = 0.5;
  SelectCosts high = ComputeSelectCosts(params, GetParam());
  EXPECT_GE(high.c_iia, low.c_iia);
  EXPECT_GE(high.c_iib, low.c_iib);
  EXPECT_GE(high.c_iii, low.c_iii);
  EXPECT_DOUBLE_EQ(high.c_i, low.c_i);  // exhaustive cost is flat
}

INSTANTIATE_TEST_SUITE_P(Distributions, SelectCostTest,
                         ::testing::Values(MatchDistribution::kUniform,
                                           MatchDistribution::kNoLoc,
                                           MatchDistribution::kHiLoc),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case MatchDistribution::kUniform:
                               return "Uniform";
                             case MatchDistribution::kNoLoc:
                               return "NoLoc";
                             default:
                               return "HiLoc";
                           }
                         });

TEST(SelectCostPaperClaimsTest, UniformClusteringWinsUpToOrderOfMagnitude) {
  // Fig. 8: "If a clustered generalization tree is available, search
  // costs may be cut by up to an order of magnitude" vs unclustered, and
  // C_III ≈ C_IIa.
  ModelParameters params = PaperParameters();
  double best_ratio = 1.0;
  for (double p : LogSpace(1e-4, 1.0, 17)) {
    params.p = p;
    SelectCosts costs =
        ComputeSelectCosts(params, MatchDistribution::kUniform);
    best_ratio = std::max(best_ratio, costs.c_iia / costs.c_iib);
    // Join index within a small factor of the unclustered tree.
    EXPECT_LT(costs.c_iii, 10.0 * costs.c_iia);
  }
  EXPECT_GT(best_ratio, 3.0);
}

TEST(SelectCostPaperClaimsTest, NoLocRegimesMatchFig9Shape) {
  // Fig. 9's two regimes. High selectivity: C_III between C_IIa and
  // C_IIb. Low selectivity (below the paper's p ≈ 0.08): the join
  // index's advantage evaporates and all strategies converge — the
  // clustered/unclustered gap becomes marginal. (In our reconstruction
  // the convergence is to a near-tie rather than C_III strictly above
  // C_IIb; see EXPERIMENTS.md.)
  ModelParameters params = PaperParameters();
  params.p = 0.3;
  SelectCosts high = ComputeSelectCosts(params, MatchDistribution::kNoLoc);
  EXPECT_LT(high.c_iib, high.c_iii);
  EXPECT_LT(high.c_iii, high.c_iia);

  params.p = 0.01;
  SelectCosts low = ComputeSelectCosts(params, MatchDistribution::kNoLoc);
  EXPECT_LT(low.c_iia / low.c_iib, 1.2);
  EXPECT_GT(low.c_iii / low.c_iib, 0.8);
  EXPECT_LT(low.c_iii / low.c_iib, 1.2);
}

TEST(SelectCostPaperClaimsTest, HiLocJoinIndexBetweenTreeVariants) {
  // Fig. 10: C_III consistently between C_IIa and C_IIb.
  ModelParameters params = PaperParameters();
  int between = 0;
  int total = 0;
  for (double p : LogSpace(1e-3, 0.9, 9)) {
    params.p = p;
    SelectCosts costs =
        ComputeSelectCosts(params, MatchDistribution::kHiLoc);
    ++total;
    if (costs.c_iii >= costs.c_iib && costs.c_iii <= costs.c_iia) {
      ++between;
    }
  }
  EXPECT_GE(between * 2, total);  // holds for the majority of the sweep
}

class JoinCostTest : public ::testing::TestWithParam<MatchDistribution> {};

TEST_P(JoinCostTest, BasicSanity) {
  ModelParameters params = PaperParameters();
  for (double p : LogSpace(1e-12, 1e-2, 6)) {
    params.p = p;
    JoinCosts costs = ComputeJoinCosts(params, GetParam());
    EXPECT_GT(costs.d_i, 0.0);
    EXPECT_GT(costs.d_iia, 0.0);
    EXPECT_GT(costs.d_iib, 0.0);
    EXPECT_GT(costs.d_iii, 0.0);
    EXPECT_LE(costs.d_ii_compute, costs.d_iia + 1e-9);
  }
}

TEST_P(JoinCostTest, NestedLoopNeverCompetitive) {
  ModelParameters params = PaperParameters();
  for (double p : LogSpace(1e-12, 1e-3, 5)) {
    params.p = p;
    JoinCosts costs = ComputeJoinCosts(params, GetParam());
    EXPECT_GT(costs.d_i, costs.d_iib);
    EXPECT_GT(costs.d_i, costs.d_iii);
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, JoinCostTest,
                         ::testing::Values(MatchDistribution::kUniform,
                                           MatchDistribution::kNoLoc,
                                           MatchDistribution::kHiLoc),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case MatchDistribution::kUniform:
                               return "Uniform";
                             case MatchDistribution::kNoLoc:
                               return "NoLoc";
                             default:
                               return "HiLoc";
                           }
                         });

TEST(JoinCostPaperClaimsTest, UniformCrossoverNearTenToMinusNine) {
  // Fig. 11: the join index wins below a crossover around p ≈ 1e-9 and
  // loses above it.
  ModelParameters params = PaperParameters();
  params.p = 1e-11;
  JoinCosts low = ComputeJoinCosts(params, MatchDistribution::kUniform);
  EXPECT_LT(low.d_iii, low.d_iia);
  params.p = 1e-6;
  JoinCosts high = ComputeJoinCosts(params, MatchDistribution::kUniform);
  EXPECT_GT(high.d_iii, high.d_iia);
}

TEST(JoinCostPaperClaimsTest, NoLocCrossoverExists) {
  // Fig. 12's qualitative shape: the join index wins at low selectivity
  // and loses to the generalization tree at high selectivity. (The paper
  // locates the crossover near p ≈ 1e-8; our D_III reconstruction moves
  // it to p ≈ 0.05 — the NO-LOC π collapses deep-pair probabilities so
  // the index stays small far longer. Documented in EXPERIMENTS.md.)
  ModelParameters params = PaperParameters();
  params.p = 1e-10;
  JoinCosts low = ComputeJoinCosts(params, MatchDistribution::kNoLoc);
  EXPECT_LT(low.d_iii, low.d_iia);
  params.p = 0.2;
  JoinCosts high = ComputeJoinCosts(params, MatchDistribution::kNoLoc);
  EXPECT_GT(high.d_iii, high.d_iia);
}

TEST(JoinCostPaperClaimsTest, ClusteredUnclusteredGapUsuallyNegligible) {
  // §4.5: "The difference between the unclustered and clustered
  // generalization tree is usually negligible."
  ModelParameters params = PaperParameters();
  for (double p : LogSpace(1e-12, 1e-6, 5)) {
    params.p = p;
    JoinCosts costs =
        ComputeJoinCosts(params, MatchDistribution::kUniform);
    EXPECT_LT(costs.d_iia / costs.d_iib, 30.0);
    EXPECT_GE(costs.d_iia, costs.d_iib - 1e-9);
  }
}

TEST(ReportTest, LogSpaceEndpoints) {
  std::vector<double> values = LogSpace(1e-4, 1.0, 5);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_NEAR(values.front(), 1e-4, 1e-12);
  EXPECT_NEAR(values.back(), 1.0, 1e-12);
  EXPECT_NEAR(values[2], 1e-2, 1e-10);
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_GT(values[i], values[i - 1]);
  }
}

TEST(ReportTest, TableReportTracksRows) {
  TableReport report({"p", "A", "B"});
  report.AddRow({0.1, 5.0, 3.0});
  report.AddRow({0.2, 1.0, 9.0});
  EXPECT_EQ(report.num_rows(), 2u);
  EXPECT_EQ(report.ArgMinOfRow(0), 2u);  // B wins row 0
  EXPECT_EQ(report.ArgMinOfRow(1), 1u);  // A wins row 1
  EXPECT_EQ(report.columns()[0], "p");
}

}  // namespace
}  // namespace spatialjoin
