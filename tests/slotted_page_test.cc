#include <gtest/gtest.h>

#include <string>

#include "storage/page.h"
#include "storage/slotted_page.h"

namespace spatialjoin {
namespace {

TEST(SlottedPageTest, InitEmpty) {
  Page page(2000);
  slotted::Init(&page);
  EXPECT_EQ(slotted::NumSlots(page), 0);
  EXPECT_GT(slotted::FreeSpace(page), 1900u);
}

TEST(SlottedPageTest, InsertRead) {
  Page page(2000);
  slotted::Init(&page);
  auto s0 = slotted::Insert(&page, "hello");
  auto s1 = slotted::Insert(&page, "world!");
  ASSERT_TRUE(s0.has_value());
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(*s0, 0);
  EXPECT_EQ(*s1, 1);
  EXPECT_EQ(*slotted::Read(page, 0), "hello");
  EXPECT_EQ(*slotted::Read(page, 1), "world!");
  EXPECT_FALSE(slotted::Read(page, 2).has_value());
}

TEST(SlottedPageTest, BinaryPayloadSurvives) {
  Page page(2000);
  slotted::Init(&page);
  std::string payload("\x00\x01\xff\x7f binary \x00 data", 18);
  auto slot = slotted::Insert(&page, payload);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slotted::Read(page, *slot), payload);
}

TEST(SlottedPageTest, FillsUntilFull) {
  Page page(256);
  slotted::Init(&page);
  std::string record(20, 'x');
  int inserted = 0;
  while (slotted::Insert(&page, record).has_value()) ++inserted;
  // 256 bytes: 4 header + n*(4 slot + 20 record) → ~10 records.
  EXPECT_GE(inserted, 9);
  EXPECT_LE(inserted, 11);
  EXPECT_LT(slotted::FreeSpace(page), record.size());
}

TEST(SlottedPageTest, DeleteMarksSlot) {
  Page page(512);
  slotted::Init(&page);
  slotted::Insert(&page, "a");
  slotted::Insert(&page, "b");
  EXPECT_TRUE(slotted::Delete(&page, 0));
  EXPECT_FALSE(slotted::Read(page, 0).has_value());
  EXPECT_EQ(*slotted::Read(page, 1), "b");
  EXPECT_FALSE(slotted::Delete(&page, 0));  // double delete
  EXPECT_FALSE(slotted::Delete(&page, 9));  // out of range
}

TEST(SlottedPageTest, EmptyRecordAllowed) {
  Page page(256);
  slotted::Init(&page);
  auto slot = slotted::Insert(&page, "");
  ASSERT_TRUE(slot.has_value());
  auto view = slotted::Read(page, *slot);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->empty());
}

}  // namespace
}  // namespace spatialjoin
