#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geometry/distance.h"
#include "geometry/point.h"
#include "geometry/predicates.h"
#include "geometry/rectangle.h"

namespace spatialjoin {
namespace {

TEST(PointTest, Arithmetic) {
  Point a(1, 2);
  Point b(3, -1);
  EXPECT_EQ(a + b, Point(4, 1));
  EXPECT_EQ(a - b, Point(-2, 3));
  EXPECT_EQ(a * 2.0, Point(2, 4));
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -7.0);
}

TEST(PointTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(Distance2(Point(0, 0), Point(3, 4)), 25.0);
  EXPECT_DOUBLE_EQ(Distance(Point(1, 1), Point(1, 1)), 0.0);
}

TEST(RectangleTest, EmptyBehaves) {
  Rectangle empty = Rectangle::Empty();
  EXPECT_TRUE(empty.is_empty());
  EXPECT_DOUBLE_EQ(empty.Area(), 0.0);
  Rectangle r(0, 0, 2, 2);
  EXPECT_FALSE(empty.Overlaps(r));
  EXPECT_FALSE(r.Overlaps(empty));
  EXPECT_TRUE(r.Contains(empty));   // empty set is everywhere contained
  EXPECT_FALSE(empty.Contains(r));
  EXPECT_EQ(empty.Union(r), r);
  EXPECT_EQ(r.Union(empty), r);
}

TEST(RectangleTest, AreaMarginCenter) {
  Rectangle r(1, 2, 4, 6);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_EQ(r.Center(), Point(2.5, 4.0));
}

TEST(RectangleTest, OverlapIsClosedAndSymmetric) {
  Rectangle a(0, 0, 1, 1);
  Rectangle touching(1, 0, 2, 1);  // shares an edge
  Rectangle apart(1.5, 0, 2, 1);
  EXPECT_TRUE(a.Overlaps(touching));
  EXPECT_TRUE(touching.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(apart));
  EXPECT_TRUE(a.Overlaps(a));
}

TEST(RectangleTest, ContainsIncludesBoundary) {
  Rectangle outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Rectangle(0, 0, 10, 10)));
  EXPECT_TRUE(outer.Contains(Rectangle(2, 2, 5, 5)));
  EXPECT_FALSE(outer.Contains(Rectangle(2, 2, 11, 5)));
  EXPECT_TRUE(outer.ContainsPoint(Point(0, 0)));
  EXPECT_TRUE(outer.ContainsPoint(Point(10, 10)));
  EXPECT_FALSE(outer.ContainsPoint(Point(10.001, 5)));
}

TEST(RectangleTest, UnionIntersection) {
  Rectangle a(0, 0, 2, 2);
  Rectangle b(1, 1, 3, 3);
  EXPECT_EQ(a.Union(b), Rectangle(0, 0, 3, 3));
  EXPECT_EQ(a.Intersection(b), Rectangle(1, 1, 2, 2));
  Rectangle apart(5, 5, 6, 6);
  EXPECT_TRUE(a.Intersection(apart).is_empty());
}

TEST(RectangleTest, Enlargement) {
  Rectangle a(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rectangle(1, 1, 2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rectangle(0, 0, 4, 2)), 4.0);
}

TEST(RectangleTest, MinMaxDistance) {
  Rectangle a(0, 0, 1, 1);
  Rectangle b(4, 5, 6, 7);
  // Closest points: (1,1) and (4,5) → distance 5.
  EXPECT_DOUBLE_EQ(a.MinDistance(b), 5.0);
  EXPECT_DOUBLE_EQ(a.MinDistance(a), 0.0);
  Rectangle overlapping(0.5, 0.5, 2, 2);
  EXPECT_DOUBLE_EQ(a.MinDistance(overlapping), 0.0);
  // Farthest corners of a∪b: (0,0) and (6,7).
  EXPECT_DOUBLE_EQ(a.MaxDistance(b), std::sqrt(36.0 + 49.0));
  EXPECT_DOUBLE_EQ(a.MinDistanceToPoint(Point(0.5, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(a.MinDistanceToPoint(Point(1, 4)), 3.0);
}

TEST(RectangleTest, ExpandedGrowsAllSides) {
  Rectangle r(1, 1, 2, 2);
  EXPECT_EQ(r.Expanded(0.5), Rectangle(0.5, 0.5, 2.5, 2.5));
  EXPECT_EQ(r.Expanded(0.0), r);
  // Negative shrink is allowed while the rectangle stays valid.
  EXPECT_EQ(r.Expanded(-0.25), Rectangle(1.25, 1.25, 1.75, 1.75));
}

TEST(RectangleTest, ExtendAccumulatesBoundingBox) {
  Rectangle box;
  box.ExtendPoint(Point(1, 5));
  box.ExtendPoint(Point(-2, 3));
  box.ExtendPoint(Point(0, 7));
  EXPECT_EQ(box, Rectangle(-2, 3, 1, 7));
}

TEST(PredicatesTest, Orientation) {
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(1, 1)), 1);
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(1, -1)), -1);
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(2, 0)), 0);
}

TEST(PredicatesTest, PointOnSegment) {
  EXPECT_TRUE(PointOnSegment(Point(1, 1), Point(0, 0), Point(2, 2)));
  EXPECT_TRUE(PointOnSegment(Point(0, 0), Point(0, 0), Point(2, 2)));
  EXPECT_FALSE(PointOnSegment(Point(3, 3), Point(0, 0), Point(2, 2)));
  EXPECT_FALSE(PointOnSegment(Point(1, 1.5), Point(0, 0), Point(2, 2)));
}

TEST(PredicatesTest, SegmentsIntersect) {
  // Proper crossing.
  EXPECT_TRUE(SegmentsIntersect(Point(0, 0), Point(2, 2), Point(0, 2),
                                Point(2, 0)));
  // Shared endpoint.
  EXPECT_TRUE(SegmentsIntersect(Point(0, 0), Point(1, 1), Point(1, 1),
                                Point(2, 0)));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect(Point(0, 0), Point(2, 0), Point(1, 0),
                                Point(3, 0)));
  // Collinear disjoint.
  EXPECT_FALSE(SegmentsIntersect(Point(0, 0), Point(1, 0), Point(2, 0),
                                 Point(3, 0)));
  // Parallel.
  EXPECT_FALSE(SegmentsIntersect(Point(0, 0), Point(2, 0), Point(0, 1),
                                 Point(2, 1)));
}

TEST(PredicatesTest, NorthwestOfIsStrict) {
  EXPECT_TRUE(NorthwestOf(Point(0, 2), Point(1, 1)));
  EXPECT_FALSE(NorthwestOf(Point(1, 1), Point(0, 2)));
  EXPECT_FALSE(NorthwestOf(Point(1, 2), Point(1, 1)));  // same x
  EXPECT_FALSE(NorthwestOf(Point(0, 1), Point(1, 1)));  // same y
}

TEST(DistanceTest, PointSegment) {
  EXPECT_DOUBLE_EQ(DistancePointSegment(Point(0, 1), Point(-1, 0),
                                        Point(1, 0)),
                   1.0);
  // Beyond the endpoint: distance to the endpoint.
  EXPECT_DOUBLE_EQ(DistancePointSegment(Point(3, 4), Point(-1, 0),
                                        Point(0, 0)),
                   5.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(DistancePointSegment(Point(3, 4), Point(0, 0),
                                        Point(0, 0)),
                   5.0);
}

TEST(DistanceTest, SegmentSegment) {
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment(Point(0, 0), Point(1, 0),
                                          Point(0, 2), Point(1, 2)),
                   2.0);
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment(Point(0, 0), Point(2, 2),
                                          Point(0, 2), Point(2, 0)),
                   0.0);
}

// Property: MinDistance(a,b) is 0 iff the rectangles overlap, and is
// symmetric; randomized over many rectangle pairs.
TEST(RectanglePropertyTest, MinDistanceConsistentWithOverlap) {
  Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    auto rand_rect = [&] {
      double x = rng.NextDouble(0, 90);
      double y = rng.NextDouble(0, 90);
      return Rectangle(x, y, x + rng.NextDouble(0.1, 10),
                       y + rng.NextDouble(0.1, 10));
    };
    Rectangle a = rand_rect();
    Rectangle b = rand_rect();
    double dab = a.MinDistance(b);
    double dba = b.MinDistance(a);
    EXPECT_DOUBLE_EQ(dab, dba);
    EXPECT_EQ(dab == 0.0, a.Overlaps(b));
    EXPECT_LE(dab, a.MaxDistance(b));
  }
}

// Property: Union contains both operands; Intersection is contained in
// both.
TEST(RectanglePropertyTest, UnionIntersectionContainment) {
  Rng rng(321);
  for (int trial = 0; trial < 500; ++trial) {
    auto rand_rect = [&] {
      double x = rng.NextDouble(0, 50);
      double y = rng.NextDouble(0, 50);
      return Rectangle(x, y, x + rng.NextDouble(0.1, 30),
                       y + rng.NextDouble(0.1, 30));
    };
    Rectangle a = rand_rect();
    Rectangle b = rand_rect();
    Rectangle u = a.Union(b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    Rectangle inter = a.Intersection(b);
    EXPECT_TRUE(a.Contains(inter));
    EXPECT_TRUE(b.Contains(inter));
    EXPECT_GE(u.Area() + 1e-9, std::max(a.Area(), b.Area()));
  }
}

}  // namespace
}  // namespace spatialjoin
