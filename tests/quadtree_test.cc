#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/join.h"
#include "core/nested_loop.h"
#include "core/select.h"
#include "core/theta_ops.h"
#include "quadtree/quadtree.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

TEST(QuadTreeTest, InsertPlacesAtSmallestCell) {
  QuadTree tree(Rectangle(0, 0, 100, 100), 8);
  // A tiny object in the lower-left corner descends deep.
  NodeId small = tree.Insert(Rectangle(1, 1, 2, 2), 0);
  EXPECT_GT(tree.HeightOf(small), 4);
  // An object straddling the center cannot leave the root cell.
  NodeId straddling = tree.Insert(Rectangle(49, 49, 51, 51), 1);
  EXPECT_EQ(tree.HeightOf(straddling), 1);
  tree.CheckInvariants();
  EXPECT_EQ(tree.num_objects(), 2);
}

TEST(QuadTreeTest, SearchMatchesBruteForce) {
  QuadTree tree(Rectangle(0, 0, 1000, 1000), 10);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 61);
  std::vector<Rectangle> data = gen.Rects(600, 1, 40);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], static_cast<TupleId>(i));
  }
  tree.CheckInvariants();
  for (int q = 0; q < 40; ++q) {
    Rectangle window = gen.NextRect(10, 150);
    std::vector<TupleId> hits = tree.SearchTids(window);
    std::vector<TupleId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Overlaps(window)) {
        expected.push_back(static_cast<TupleId>(i));
      }
    }
    std::sort(hits.begin(), hits.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hits, expected);
  }
}

TEST(QuadTreeTest, RemoveWorks) {
  QuadTree tree(Rectangle(0, 0, 64, 64), 6);
  std::vector<Rectangle> data;
  for (int i = 0; i < 50; ++i) {
    double x = (i % 8) * 8.0;
    double y = (i / 8) * 8.0;
    data.emplace_back(x + 0.5, y + 0.5, x + 3.0, y + 3.0);
    tree.Insert(data.back(), i);
  }
  for (int i = 0; i < 50; i += 2) {
    EXPECT_TRUE(tree.Remove(data[static_cast<size_t>(i)], i)) << i;
  }
  EXPECT_FALSE(tree.Remove(data[0], 0));  // already gone
  EXPECT_FALSE(tree.Remove(Rectangle(60, 60, 63, 63), 999));
  tree.CheckInvariants();
  EXPECT_EQ(tree.num_objects(), 25);
  std::vector<TupleId> all = tree.SearchTids(Rectangle(0, 0, 64, 64));
  EXPECT_EQ(all.size(), 25u);
  for (TupleId tid : all) EXPECT_EQ(tid % 2, 1);
}

TEST(QuadTreeTest, DepthCapRespected) {
  QuadTree tree(Rectangle(0, 0, 100, 100), 3);
  // Many tiny co-located objects: all pile up at the depth cap.
  for (int i = 0; i < 30; ++i) {
    tree.Insert(Rectangle(1, 1, 1.5, 1.5), i);
  }
  tree.CheckInvariants();
  EXPECT_LE(tree.height(), 4);  // cells to depth 3 + object level
  EXPECT_EQ(tree.SearchTids(Rectangle(0, 0, 2, 2)).size(), 30u);
}

TEST(QuadTreeTest, WorksAsGeneralizationTreeForSelect) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 512);
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  Relation rel("data", schema, &pool);
  QuadTree tree(Rectangle(0, 0, 500, 500), 9);
  RectGenerator gen(Rectangle(0, 0, 500, 500), 63);
  for (int64_t i = 0; i < 300; ++i) {
    Rectangle r = gen.NextRect(1, 25);
    TupleId tid = rel.Insert(Tuple({Value(i), Value(r)}));
    tree.Insert(r, tid);
  }
  tree.AttachRelation(&rel, 1);

  WithinDistanceOp op(20.0);
  for (int q = 0; q < 10; ++q) {
    Value selector(gen.NextRect(5, 60));
    SelectResult result = SpatialSelect(selector, tree, op);
    JoinResult truth = NestedLoopSelect(selector, rel, 1, op);
    std::set<TupleId> tree_tids(result.matching_tuples.begin(),
                                result.matching_tuples.end());
    std::set<TupleId> truth_tids;
    for (const auto& m : truth.matches) truth_tids.insert(m.first);
    EXPECT_EQ(tree_tids, truth_tids);
    EXPECT_LT(result.theta_tests, rel.num_tuples());  // pruning happened
  }
}

TEST(QuadTreeTest, JoinsAgainstAnRTree) {
  // Algorithm JOIN across *different* generalization-tree families: a
  // quadtree on R, an R-tree on S — the point of the paper's abstraction.
  DiskManager disk(2000);
  BufferPool pool(&disk, 1024);
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  Relation r("r", schema, &pool);
  Relation s("s", schema, &pool);
  QuadTree r_tree(Rectangle(0, 0, 400, 400), 8);
  RTree s_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen_r(Rectangle(0, 0, 400, 400), 65);
  RectGenerator gen_s(Rectangle(0, 0, 400, 400), 66);
  for (int64_t i = 0; i < 250; ++i) {
    Rectangle br = gen_r.NextRect(1, 20);
    Rectangle bs = gen_s.NextRect(1, 20);
    r_tree.Insert(br, r.Insert(Tuple({Value(i), Value(br)})));
    s_rtree.Insert(bs, s.Insert(Tuple({Value(i), Value(bs)})));
  }
  r_tree.AttachRelation(&r, 1);
  RTreeGenTree s_tree(&s_rtree, &s, 1);

  OverlapsOp op;
  JoinResult heterogeneous = TreeJoin(r_tree, s_tree, op);
  JoinResult truth = NestedLoopJoin(r, 1, s, 1, op);
  EXPECT_EQ(AsSet(heterogeneous), AsSet(truth));
  EXPECT_EQ(AsSet(heterogeneous).size(), heterogeneous.matches.size());
}

TEST(QuadTreeDeathTest, RejectsOutOfWorldObject) {
  QuadTree tree(Rectangle(0, 0, 10, 10), 4);
  EXPECT_DEATH(tree.Insert(Rectangle(5, 5, 15, 15), 0), "outside");
}

}  // namespace
}  // namespace spatialjoin
