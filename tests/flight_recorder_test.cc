// Tests for the flight recorder (obs/flight_recorder.h) and the
// structured event log (obs/event_log.h): ring semantics, the activity
// table, the explicit dump pipeline, the watchdog, and — in forked
// subprocesses — the two fatal trigger paths (SJ_CHECK failure and a raw
// signal), each asserted to leave a schema-valid dump naming its trigger.

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/timer.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "json_validator.h"

// Sanitizers install their own fatal-signal machinery and dislike
// fork-in-threaded-process, so the subprocess crash tests step aside
// there; the in-process dump/watchdog tests still run.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SJ_UNDER_SANITIZER 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#ifndef SJ_UNDER_SANITIZER
#define SJ_UNDER_SANITIZER 1
#endif
#endif
#endif

namespace spatialjoin {
namespace {

std::string TempDumpPath(const char* tag) {
  return ::testing::TempDir() + "sj_" + tag + "_" +
         std::to_string(::getpid()) + ".flightdump.json";
}

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Installs the recorder pointed at `path`, without signal handlers (the
// in-process tests never crash) and without the watchdog unless asked.
void InstallForTest(const std::string& path, bool watchdog = false,
                    int64_t stall_budget_ns = 0) {
  FlightRecorderOptions options;
  options.dump_path = path;
  options.install_signal_handlers = false;
  options.start_watchdog = watchdog;
  options.watchdog_interval_ms = 10;
  if (stall_budget_ns > 0) options.stall_budget_ns = stall_budget_ns;
  FlightRecorder::Install(options);
}

// ---------------------------------------------------------------------------
// Event log.
// ---------------------------------------------------------------------------

TEST(EventLogTest, RecordAndTailRoundTrip) {
  EventLog log(16);
  log.Record(EventType::kMessage, EventSeverity::kInfo, "plain");
  log.Recordf(EventType::kQueryFinished, EventSeverity::kWarn,
              "join %s: %d matches", "tree_join", 7);
  std::vector<EventView> tail = log.Tail(16);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 1u);
  EXPECT_EQ(tail[0].type, EventType::kMessage);
  EXPECT_EQ(tail[0].severity, EventSeverity::kInfo);
  EXPECT_EQ(tail[0].message, "plain");
  EXPECT_GT(tail[0].ts_ns, 0);
  EXPECT_EQ(tail[1].seq, 2u);
  EXPECT_EQ(tail[1].message, "join tree_join: 7 matches");
  EXPECT_GE(tail[1].ts_ns, tail[0].ts_ns);
}

TEST(EventLogTest, WrapKeepsNewestAndCountsDropped) {
  EventLog log(8);
  for (int i = 0; i < 20; ++i) {
    log.Recordf(EventType::kMessage, EventSeverity::kInfo, "m%d", i);
  }
  EXPECT_EQ(log.total(), 20u);
  EXPECT_EQ(log.dropped(), 12u);
  std::vector<EventView> tail = log.Tail(100);
  ASSERT_EQ(tail.size(), 8u);
  EXPECT_EQ(tail.front().message, "m12");
  EXPECT_EQ(tail.back().message, "m19");
  for (size_t i = 1; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, tail[i - 1].seq + 1);
  }
}

TEST(EventLogTest, LongMessagesTruncateAtSlotCapacity) {
  EventLog log(4);
  std::string long_message(3 * EventRecord::kMessageBytes, 'x');
  log.Record(EventType::kMessage, EventSeverity::kInfo, long_message.c_str());
  std::vector<EventView> tail = log.Tail(4);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].message.size(), EventRecord::kMessageBytes - 1);
  EXPECT_EQ(tail[0].message, long_message.substr(
                                 0, EventRecord::kMessageBytes - 1));
}

TEST(EventLogTest, TailHonorsMaxRecords) {
  EventLog log(16);
  for (int i = 0; i < 10; ++i) {
    log.Recordf(EventType::kMessage, EventSeverity::kInfo, "m%d", i);
  }
  std::vector<EventView> tail = log.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().message, "m7");
  EXPECT_EQ(tail.back().message, "m9");
}

TEST(EventLogTest, SjEventMacroFeedsGlobalLog) {
  const uint64_t before = EventLog::Global().total();
  SJ_EVENT(kMessage, kInfo, "macro probe %d", 42);
  std::vector<EventView> tail = EventLog::Global().Tail(8);
  ASSERT_FALSE(tail.empty());
  EXPECT_GT(EventLog::Global().total(), before);
  EXPECT_EQ(tail.back().message, "macro probe 42");
}

TEST(EventLogTest, ConcurrentRecordersLoseNothing) {
  EventLog log(4096);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Recordf(EventType::kMessage, EventSeverity::kInfo, "t%d i%d", t,
                    i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(log.total(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(log.dropped(), 0u);
  std::vector<EventView> tail = log.Tail(kThreads * kPerThread);
  EXPECT_EQ(tail.size(), static_cast<size_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// Activity scopes.
// ---------------------------------------------------------------------------

TEST(ActivityScopeTest, BeatWithoutScopeIsANoop) {
  ActivityScope::BeatThisThread();  // must not crash or claim anything
}

TEST(ActivityScopeTest, NestedScopesBeatInnermost) {
  ActivityScope outer("test.outer", "outer");
  {
    ActivityScope inner("test.inner", "inner");
    ActivityScope::BeatThisThread();
    inner.SetDetail("detail text");
  }
  // Inner destroyed; the TLS stack must fall back to outer.
  ActivityScope::BeatThisThread();
  outer.Beat();
}

// ---------------------------------------------------------------------------
// Explicit dump pipeline.
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, ExplicitDumpIsSchemaValidAndSelfDescribing) {
  const std::string path = TempDumpPath("explicit");
  InstallForTest(path);
  EXPECT_TRUE(FlightRecorder::installed());

  SJ_EVENT(kMessage, kInfo, "explicit-dump marker event");
  ActivityScope scope("test.query", "unit");
  scope.SetDetail("explicit-dump scope");
  scope.Beat();

  const int64_t before = FlightRecorder::dumps_written();
  ASSERT_TRUE(FlightRecorder::Dump("explicit", "unit test"));
  EXPECT_EQ(FlightRecorder::dumps_written(), before + 1);

  const std::string doc = ReadFileToString(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(testing_json::IsValidJson(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"flightdump_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"explicit\""), std::string::npos);
  EXPECT_NE(doc.find("unit test"), std::string::npos);
  EXPECT_NE(doc.find("explicit-dump marker event"), std::string::npos);
  EXPECT_NE(doc.find("test.query"), std::string::npos);
  EXPECT_NE(doc.find("explicit-dump scope"), std::string::npos);
  // Writing the dump records a kDump event; a second dump must carry it.
  ASSERT_TRUE(FlightRecorder::Dump("explicit", "second"));
  const std::string second = ReadFileToString(path);
  EXPECT_NE(second.find("\"type\": \"dump\""), std::string::npos);
  ::unlink(path.c_str());
}

TEST(FlightRecorderTest, InstallRepointsTheDumpPath) {
  const std::string first = TempDumpPath("repoint_a");
  const std::string second = TempDumpPath("repoint_b");
  InstallForTest(first);
  InstallForTest(second);
  ASSERT_TRUE(FlightRecorder::Dump("explicit", "repoint"));
  EXPECT_TRUE(ReadFileToString(first).empty());
  EXPECT_FALSE(ReadFileToString(second).empty());
  ::unlink(second.c_str());
}

TEST(FlightRecorderTest, BufferPoolFaultShowsUpInTheDump) {
  const std::string path = TempDumpPath("bp_fault");
  InstallForTest(path);

  // Fault injection: one dirty page, one failing write. The pool's
  // destructor flush fails and must record a kBufferPoolFault event
  // instead of an untracked stderr line.
  {
    DiskManager disk(256);
    BufferPool pool(&disk, 4);
    (void)pool.NewPage();  // allocated dirty
    disk.FailNextWrites(1);
  }

  ASSERT_TRUE(FlightRecorder::Dump("explicit", "after fault"));
  const std::string doc = ReadFileToString(path);
  EXPECT_TRUE(testing_json::IsValidJson(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"type\": \"buffer_pool_fault\""), std::string::npos)
      << "dump should carry the injected flush failure";
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

// Polls `done` for up to ~5s; returns whether it became true.
bool WaitFor(const std::function<bool()>& done) {
  for (int i = 0; i < 500; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return done();
}

TEST(FlightRecorderWatchdogTest, FlagsAStalledActivityAndDumps) {
  const std::string path = TempDumpPath("stall");
  // 50ms stall budget, 10ms scan interval: the sleeper below goes stale
  // after its single beat and must be flagged well within the poll window.
  InstallForTest(path, /*watchdog=*/true,
                 /*stall_budget_ns=*/int64_t{50} * 1000 * 1000);
  ASSERT_TRUE(FlightRecorder::watchdog_running());

  const int64_t stalls_before = FlightRecorder::watchdog_stalls();
  std::atomic<bool> release{false};
  std::thread sleeper([&release] {
    ActivityScope scope("test.stall", "sleeper");
    scope.Beat();
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  EXPECT_TRUE(WaitFor([&] {
    return FlightRecorder::watchdog_stalls() > stalls_before;
  })) << "watchdog never flagged the stalled scope";
  release.store(true, std::memory_order_release);
  sleeper.join();
  FlightRecorder::StopWatchdog();
  EXPECT_FALSE(FlightRecorder::watchdog_running());
  EXPECT_GT(FlightRecorder::watchdog_ticks(), 0);

  const std::string doc = ReadFileToString(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(testing_json::IsValidJson(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"detail\": \"stalled_heartbeat\""), std::string::npos);
  EXPECT_NE(doc.find("test.stall"), std::string::npos);

  // The incident is also an event, independent of the dump file.
  bool saw_stall_event = false;
  for (const EventView& e : EventLog::Global().Tail(256)) {
    if (e.type == EventType::kWatchdogStall) saw_stall_event = true;
  }
  EXPECT_TRUE(saw_stall_event);
  ::unlink(path.c_str());
}

TEST(FlightRecorderWatchdogTest, FlagsAnOverDeadlineQuery) {
  const std::string path = TempDumpPath("deadline");
  InstallForTest(path, /*watchdog=*/true,
                 /*stall_budget_ns=*/int64_t{10} * 1000 * 1000 * 1000);
  ASSERT_TRUE(FlightRecorder::watchdog_running());

  const int64_t hits_before = FlightRecorder::watchdog_deadline_hits();
  std::atomic<bool> release{false};
  std::thread overdue([&release] {
    // 1ms deadline, but the scope keeps beating — so only the deadline
    // check (not the stall check) can flag it.
    ActivityScope scope("test.deadline", "sleeper",
                        /*deadline_budget_ns=*/1000000);
    while (!release.load(std::memory_order_acquire)) {
      scope.Beat();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  EXPECT_TRUE(WaitFor([&] {
    return FlightRecorder::watchdog_deadline_hits() > hits_before;
  })) << "watchdog never flagged the over-deadline scope";
  release.store(true, std::memory_order_release);
  overdue.join();
  FlightRecorder::StopWatchdog();

  const std::string doc = ReadFileToString(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(testing_json::IsValidJson(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"detail\": \"deadline_exceeded\""), std::string::npos);
  EXPECT_NE(doc.find("test.deadline"), std::string::npos);
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Fatal trigger paths, each in a forked subprocess.
// ---------------------------------------------------------------------------

// Forks; runs `crash` (which must not return) in the child with the
// recorder armed at `path`; asserts the child died by `expected_signal`.
void RunCrashChild(const std::string& path, int expected_signal,
                   void (*crash)()) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: arm the real signal handlers, then die. Only async-safe
    // exits from here — no gtest, no exit(3) (it would run atexit hooks
    // of a half-copied process).
    FlightRecorderOptions options;
    options.dump_path = path;
    options.install_signal_handlers = true;
    FlightRecorder::Install(options);
    crash();
    _exit(97);  // unreachable: crash() must not return
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited normally with status "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  EXPECT_EQ(WTERMSIG(status), expected_signal);
}

TEST(FlightRecorderCrashTest, CheckFailureLeavesASchemaValidDump) {
#ifdef SJ_UNDER_SANITIZER
  GTEST_SKIP() << "subprocess crash tests are skipped under sanitizers";
#endif
  const std::string path = TempDumpPath("check_crash");
  RunCrashChild(path, SIGABRT, [] {
    SJ_EVENT(kMessage, kInfo, "pre-crash breadcrumb");
    SJ_CHECK_MSG(false, "deliberate test crash");
  });

  const std::string doc = ReadFileToString(path);
  ASSERT_FALSE(doc.empty()) << "child wrote no dump to " << path;
  EXPECT_TRUE(testing_json::IsValidJson(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"kind\": \"check_failure\""), std::string::npos);
  EXPECT_NE(doc.find("\"fatal\": true"), std::string::npos);
  EXPECT_NE(doc.find("deliberate test crash"), std::string::npos);
  // The event-log tail must carry both the breadcrumb and the failure.
  EXPECT_NE(doc.find("pre-crash breadcrumb"), std::string::npos);
  EXPECT_NE(doc.find("\"type\": \"check_failure\""), std::string::npos);
  ::unlink(path.c_str());
}

TEST(FlightRecorderCrashTest, FatalSignalLeavesASchemaValidDump) {
#ifdef SJ_UNDER_SANITIZER
  GTEST_SKIP() << "subprocess crash tests are skipped under sanitizers";
#endif
  const std::string path = TempDumpPath("signal_crash");
  RunCrashChild(path, SIGSEGV, [] {
    SJ_EVENT(kMessage, kInfo, "about to fault");
    ::raise(SIGSEGV);
  });

  const std::string doc = ReadFileToString(path);
  ASSERT_FALSE(doc.empty()) << "child wrote no dump to " << path;
  EXPECT_TRUE(testing_json::IsValidJson(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"kind\": \"signal\""), std::string::npos);
  EXPECT_NE(doc.find("SIGSEGV"), std::string::npos);
  EXPECT_NE(doc.find("\"fatal\": true"), std::string::npos);
  EXPECT_NE(doc.find("about to fault"), std::string::npos);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace spatialjoin
