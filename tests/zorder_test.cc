#include <gtest/gtest.h>

#include "common/random.h"
#include "zorder/zdecompose.h"
#include "zorder/zorder.h"

namespace spatialjoin {
namespace {

TEST(InterleaveTest, KnownValues) {
  EXPECT_EQ(InterleaveBits(0, 0), 0u);
  EXPECT_EQ(InterleaveBits(1, 0), 1u);
  EXPECT_EQ(InterleaveBits(0, 1), 2u);
  EXPECT_EQ(InterleaveBits(1, 1), 3u);
  EXPECT_EQ(InterleaveBits(2, 0), 4u);
  EXPECT_EQ(InterleaveBits(3, 3), 15u);
}

TEST(InterleaveTest, RoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.NextUint64());
    uint32_t y = static_cast<uint32_t>(rng.NextUint64());
    uint32_t rx, ry;
    DeinterleaveBits(InterleaveBits(x, y), &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(ZCellTest, IntervalNesting) {
  ZCell root;  // whole space
  EXPECT_EQ(root.interval_lo(), 0u);
  EXPECT_EQ(root.interval_hi(), uint64_t{1} << (2 * ZCell::kMaxLevel));
  ZCell c0 = root.Child(0);
  ZCell c3 = root.Child(3);
  EXPECT_TRUE(root.ContainsCell(c0));
  EXPECT_TRUE(root.ContainsCell(c3));
  EXPECT_FALSE(c0.ContainsCell(root));
  EXPECT_FALSE(c0.ContainsCell(c3));
  // The four children tile the parent interval.
  uint64_t covered = 0;
  for (int q = 0; q < 4; ++q) {
    ZCell child = root.Child(q);
    covered += child.interval_hi() - child.interval_lo();
  }
  EXPECT_EQ(covered, root.interval_hi() - root.interval_lo());
}

TEST(ZGridTest, CellOfCorners) {
  ZGrid grid(Rectangle(0, 0, 100, 100));
  EXPECT_EQ(grid.ZValueOf(Point(0, 0)), 0u);
  uint32_t cx, cy;
  grid.CellCoords(Point(100, 100), &cx, &cy);  // clamped to last cell
  EXPECT_EQ(cx, ZGrid::CellsPerAxis() - 1);
  EXPECT_EQ(cy, ZGrid::CellsPerAxis() - 1);
  // Out-of-world points clamp instead of crashing.
  grid.CellCoords(Point(-5, 105), &cx, &cy);
  EXPECT_EQ(cx, 0u);
  EXPECT_EQ(cy, ZGrid::CellsPerAxis() - 1);
}

TEST(ZGridTest, CellRectRoundTrip) {
  ZGrid grid(Rectangle(0, 0, 64, 64));
  Point p(13.7, 42.1);
  ZCell cell = grid.CellOf(p);
  Rectangle r = grid.CellRect(cell);
  EXPECT_TRUE(r.ContainsPoint(p));
  // Finest cells are tiny.
  EXPECT_LT(r.width(), 1e-4);
}

TEST(ZGridTest, ProximityFailureExistsAlongCurve) {
  // The paper's Fig. 1 point: spatially adjacent cells can be far apart
  // in z-order. Cells (0, 1) and (1, 0)... actually take the classic
  // discontinuity: (2^{k-1}-1, 0) and (2^{k-1}, 0) are neighbors in
  // space but half the curve apart.
  uint32_t half = ZGrid::CellsPerAxis() / 2;
  uint64_t za = InterleaveBits(half - 1, 0);
  uint64_t zb = InterleaveBits(half, 0);
  EXPECT_GT(zb - za, uint64_t{1} << (2 * ZCell::kMaxLevel - 3));
}

TEST(ZDecomposeTest, FullWorldIsOneCell) {
  ZGrid grid(Rectangle(0, 0, 10, 10));
  std::vector<ZCell> cells = DecomposeRectangle(grid.world(), grid);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].level, 0);
}

TEST(ZDecomposeTest, QuadrantIsOneCell) {
  ZGrid grid(Rectangle(0, 0, 16, 16));
  std::vector<ZCell> cells =
      DecomposeRectangle(Rectangle(0, 0, 8, 8), grid);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].level, 1);
  EXPECT_EQ(cells[0].prefix, 0u);
}

TEST(ZDecomposeTest, RespectsMaxCells) {
  ZGrid grid(Rectangle(0, 0, 100, 100));
  ZDecomposeOptions options;
  options.max_level = 12;
  options.max_cells = 8;
  std::vector<ZCell> cells =
      DecomposeRectangle(Rectangle(13.1, 17.2, 55.5, 61.3), grid, options);
  EXPECT_LE(cells.size(), 8u);
  EXPECT_GE(cells.size(), 1u);
}

// Properties of the decomposition: cells cover the rectangle, are sorted,
// and have pairwise disjoint z-intervals.
TEST(ZDecomposePropertyTest, CoverSortedDisjoint) {
  ZGrid grid(Rectangle(0, 0, 1000, 1000));
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    double x = rng.NextDouble(0, 900);
    double y = rng.NextDouble(0, 900);
    Rectangle r(x, y, x + rng.NextDouble(0.5, 100),
                y + rng.NextDouble(0.5, 100));
    std::vector<ZCell> cells = DecomposeRectangle(r, grid);
    ASSERT_FALSE(cells.empty());
    Rectangle covered;
    for (size_t i = 0; i < cells.size(); ++i) {
      covered.Extend(grid.CellRect(cells[i]));
      if (i > 0) {
        EXPECT_LE(cells[i - 1].interval_hi(), cells[i].interval_lo());
      }
    }
    EXPECT_TRUE(covered.Contains(r));
  }
}

// Property: overlapping rectangles always produce at least one nested
// cell pair — the completeness basis of the sort-merge join.
TEST(ZDecomposePropertyTest, OverlapImpliesNestedCells) {
  ZGrid grid(Rectangle(0, 0, 1000, 1000));
  Rng rng(13);
  int overlapping_found = 0;
  for (int trial = 0; trial < 300; ++trial) {
    auto rand_rect = [&] {
      double x = rng.NextDouble(0, 750);
      double y = rng.NextDouble(0, 750);
      return Rectangle(x, y, x + rng.NextDouble(50, 250),
                       y + rng.NextDouble(50, 250));
    };
    Rectangle a = rand_rect();
    Rectangle b = rand_rect();
    if (!a.Overlaps(b)) continue;
    ++overlapping_found;
    std::vector<ZCell> ca = DecomposeRectangle(a, grid);
    std::vector<ZCell> cb = DecomposeRectangle(b, grid);
    bool nested = false;
    for (const ZCell& x : ca) {
      for (const ZCell& y : cb) {
        if (x.ContainsCell(y) || y.ContainsCell(x)) nested = true;
      }
    }
    EXPECT_TRUE(nested) << "a=" << a.ToString() << " b=" << b.ToString();
  }
  EXPECT_GT(overlapping_found, 10);
}

}  // namespace
}  // namespace spatialjoin
