// Cooperative cancellation and deadline semantics (DESIGN.md §12): token
// latching, level-boundary stops in the sequential and parallel
// traversals, partial-result shape, and the cleanliness of the thread
// pool and buffer pool after a stopped query (the exec auditors).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "audit/bufferpool_audit.h"
#include "audit/exec_audit.h"
#include "core/join.h"
#include "core/select.h"
#include "core/spatial_join.h"
#include "core/theta_ops.h"
#include "exec/cancel.h"
#include "exec/frozen_tree.h"
#include "exec/parallel_join.h"
#include "exec/parallel_select.h"
#include "exec/thread_pool.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

TEST(CancelToken, DefaultTokenNeverStops) {
  exec::CancelToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_EQ(token.reason(), exec::StopReason::kNone);
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancelToken, CancelLatchesAndConverts) {
  exec::CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.reason(), exec::StopReason::kCancelled);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelToken, DeadlineLatchesAndConverts) {
  exec::CancelToken token;
  token.ArmDeadline(1);  // 1ns: expired by the time anyone polls
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.reason(), exec::StopReason::kDeadline);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelToken, FirstReasonWinsEvenIfBothFire) {
  exec::CancelToken token;
  token.Cancel();
  ASSERT_TRUE(token.ShouldStop());  // latches kCancelled
  token.ArmDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(token.ShouldStop());
  // The reason is sticky: the deadline passing later does not rewrite
  // the history the caller already observed.
  EXPECT_EQ(token.reason(), exec::StopReason::kCancelled);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelToken, GenerousDeadlineDoesNotTrip) {
  exec::CancelToken token;
  token.ArmDeadline(int64_t{60} * 1'000'000'000);
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancelToken, ArmDeadlineNonPositiveDisarms) {
  exec::CancelToken token;
  token.ArmDeadline(1);
  token.ArmDeadline(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(token.ShouldStop());
}

// Disk-backed fixture (the dispatcher path the query service exercises),
// mirroring the join-strategies fixture: two 200-rectangle relations
// with R-trees.
class CancelExecutionTest : public ::testing::Test {
 protected:
  CancelExecutionTest()
      : disk_(2000), pool_(&disk_, 2048), world_(0, 0, 600, 600) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    r_ = std::make_unique<Relation>("r", schema, &pool_);
    s_ = std::make_unique<Relation>("s", schema, &pool_);
    r_rtree_ = std::make_unique<RTree>(&pool_, RTreeSplit::kQuadratic, 8);
    s_rtree_ = std::make_unique<RTree>(&pool_, RTreeSplit::kQuadratic, 8);
    RectGenerator gen_r(world_, 31);
    RectGenerator gen_s(world_, 32);
    for (int64_t i = 0; i < 200; ++i) {
      Rectangle box_r = gen_r.NextRect(2, 30);
      Rectangle box_s = gen_s.NextRect(2, 30);
      r_rtree_->Insert(box_r, r_->Insert(Tuple({Value(i), Value(box_r)})));
      s_rtree_->Insert(box_s, s_->Insert(Tuple({Value(i), Value(box_s)})));
    }
    r_adapter_ = std::make_unique<RTreeGenTree>(r_rtree_.get(), r_.get(), 1);
    s_adapter_ = std::make_unique<RTreeGenTree>(s_rtree_.get(), s_.get(), 1);
  }

  DiskManager disk_;
  BufferPool pool_;
  Rectangle world_;
  std::unique_ptr<Relation> r_;
  std::unique_ptr<Relation> s_;
  std::unique_ptr<RTree> r_rtree_;
  std::unique_ptr<RTree> s_rtree_;
  std::unique_ptr<RTreeGenTree> r_adapter_;
  std::unique_ptr<RTreeGenTree> s_adapter_;
};

TEST_F(CancelExecutionTest, PreCancelledTreeJoinStopsBeforeAnyLevel) {
  OverlapsOp op;
  JoinResult full = TreeJoin(*r_adapter_, *s_adapter_, op);
  ASSERT_FALSE(full.matches.empty());  // the stop must be observable

  exec::CancelToken token;
  token.Cancel();
  JoinResult stopped =
      TreeJoin(*r_adapter_, *s_adapter_, op, Traversal::kBreadthFirst,
               nullptr, &token);
  EXPECT_TRUE(stopped.matches.empty());
  EXPECT_EQ(stopped.qual_pairs_examined, 0);
  EXPECT_LT(stopped.nodes_accessed, full.nodes_accessed);
}

TEST_F(CancelExecutionTest, PreExpiredDeadlineSelectDoesZeroWork) {
  OverlapsOp op;
  exec::CancelToken token;
  token.ArmDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Value selector(Rectangle(100, 100, 400, 400));
  SelectResult stopped =
      SpatialSelect(selector, *s_adapter_, op, Traversal::kBreadthFirst,
                    nullptr, &token);
  // The entry check guarantees a deterministic empty result — not one
  // that depends on how far the traversal raced the clock.
  EXPECT_TRUE(stopped.matching_nodes.empty());
  EXPECT_TRUE(stopped.matching_tuples.empty());
  EXPECT_EQ(stopped.nodes_accessed, 0);
  EXPECT_EQ(token.reason(), exec::StopReason::kDeadline);
}

TEST_F(CancelExecutionTest, DispatcherDeadlineReturnsDeadlineExceeded) {
  OverlapsOp op;
  exec::CancelToken token;
  SpatialJoinContext ctx;
  ctx.r_tree = r_adapter_.get();
  ctx.s_tree = s_adapter_.get();
  ctx.cancel = &token;
  ctx.deadline_budget_ns = 1;  // expires before the first level boundary

  JoinResult stopped = ExecuteJoin(JoinStrategy::kTreeJoin, ctx, op);
  EXPECT_EQ(stopped.qual_pairs_examined, 0);  // no level was processed
  EXPECT_TRUE(stopped.matches.empty());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);

  // A stopped query must leave the storage layer as clean as a finished
  // one: every page unpinned, frame bookkeeping consistent.
  audit::AuditReport storage = audit::AuditBufferPool(pool_);
  EXPECT_TRUE(storage.ok()) << storage.ToJson();
}

TEST_F(CancelExecutionTest, DispatcherWithoutDeadlineLeavesTokenClean) {
  OverlapsOp op;
  exec::CancelToken token;
  SpatialJoinContext ctx;
  ctx.r_tree = r_adapter_.get();
  ctx.s_tree = s_adapter_.get();
  ctx.cancel = &token;  // armed with no budget: must never fire

  JoinResult full = ExecuteJoin(JoinStrategy::kTreeJoin, ctx, op);
  EXPECT_FALSE(full.matches.empty());
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST_F(CancelExecutionTest, CancelledParallelJoinLeavesPoolQuiescent) {
  OverlapsOp op;
  exec::FrozenTree r_frozen = exec::FrozenTree::Materialize(*r_adapter_);
  exec::FrozenTree s_frozen = exec::FrozenTree::Materialize(*s_adapter_);
  exec::ThreadPool workers(4);

  exec::CancelToken token;
  token.Cancel();
  JoinResult stopped = exec::ParallelTreeJoin(r_frozen, s_frozen, op,
                                              &workers, {}, &token);
  EXPECT_TRUE(stopped.matches.empty());

  // The cancelled join reached its level barrier before stopping, so no
  // chunk task may be left behind on the pool.
  EXPECT_TRUE(workers.Quiescent());
  audit::AuditReport report = audit::AuditThreadPool(workers);
  EXPECT_TRUE(report.ok()) << report.ToJson();
}

TEST_F(CancelExecutionTest, CancelledParallelSelectLeavesPoolQuiescent) {
  OverlapsOp op;
  exec::FrozenTree s_frozen = exec::FrozenTree::Materialize(*s_adapter_);
  exec::ThreadPool workers(4);

  exec::CancelToken token;
  token.Cancel();
  Value selector(Rectangle(100, 100, 400, 400));
  SelectResult stopped =
      exec::ParallelSelect(selector, s_frozen, op, &workers, {}, &token);
  EXPECT_TRUE(stopped.matching_tuples.empty());
  EXPECT_TRUE(workers.Quiescent());
  audit::AuditReport report = audit::AuditThreadPool(workers);
  EXPECT_TRUE(report.ok()) << report.ToJson();
}

TEST_F(CancelExecutionTest, MidFlightCancelStopsAtALevelBoundary) {
  // Cancellation from another thread, racing the traversal: wherever the
  // cancel lands, the result must be a *prefix* of the sequential run's
  // levels — never a torn level — and the counters must stay consistent
  // (every match was really tested).
  OverlapsOp op;
  JoinResult full = TreeJoin(*r_adapter_, *s_adapter_, op);

  exec::FrozenTree r_frozen = exec::FrozenTree::Materialize(*r_adapter_);
  exec::FrozenTree s_frozen = exec::FrozenTree::Materialize(*s_adapter_);
  exec::ThreadPool workers(4);
  exec::CancelToken token;

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    token.Cancel();
  });
  JoinResult stopped = exec::ParallelTreeJoin(r_frozen, s_frozen, op,
                                              &workers, {}, &token);
  canceller.join();

  // Whatever was produced is a prefix of the full result.
  ASSERT_LE(stopped.matches.size(), full.matches.size());
  for (size_t i = 0; i < stopped.matches.size(); ++i) {
    EXPECT_EQ(stopped.matches[i], full.matches[i]) << "at " << i;
  }
  EXPECT_LE(stopped.qual_pairs_examined, full.qual_pairs_examined);
  EXPECT_TRUE(workers.Quiescent());
}

}  // namespace
}  // namespace spatialjoin
