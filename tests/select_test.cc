#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/memory_gentree.h"
#include "core/nested_loop.h"
#include "core/select.h"
#include "core/theta_ops.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/hierarchy_generator.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

// Ground truth: exhaustively θ-test the selector against all application
// tuples of the tree.
std::vector<TupleId> BruteForceSelect(const Value& selector,
                                      const GeneralizationTree& tree,
                                      const ThetaOperator& op) {
  std::vector<TupleId> out;
  std::vector<NodeId> stack{tree.root()};
  while (!stack.empty()) {
    NodeId node = stack.back();
    stack.pop_back();
    if (tree.IsApplicationNode(node) &&
        op.Theta(selector, tree.Geometry(node))) {
      out.push_back(tree.TupleOf(node));
    }
    for (NodeId child : tree.Children(node)) stack.push_back(child);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TupleId> Sorted(std::vector<TupleId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class SelectOnHierarchyTest : public ::testing::TestWithParam<Traversal> {
 protected:
  SelectOnHierarchyTest() : disk_(2000), pool_(&disk_, 256) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_P(SelectOnHierarchyTest, MatchesBruteForceAcrossOperators) {
  HierarchyOptions options;
  options.height = 4;
  options.fanout = 3;
  GeneratedHierarchy h = GenerateHierarchy(
      Rectangle(0, 0, 100, 100), options, &pool_,
      RelationLayout::kClustered);

  WithinDistanceOp within(12.0);
  OverlapsOp overlaps;
  NorthwestOfOp northwest;
  ContainedInOp contained;
  const ThetaOperator* ops[] = {&within, &overlaps, &northwest, &contained};

  RectGenerator gen(Rectangle(0, 0, 100, 100), 404);
  for (const ThetaOperator* op : ops) {
    for (int q = 0; q < 10; ++q) {
      Value selector(gen.NextRect(2, 30));
      SelectResult result =
          SpatialSelect(selector, *h.tree, *op, GetParam());
      EXPECT_EQ(Sorted(result.matching_tuples),
                BruteForceSelect(selector, *h.tree, *op))
          << op->name();
    }
  }
}

TEST_P(SelectOnHierarchyTest, PrunesComparedToExhaustive) {
  HierarchyOptions options;
  options.height = 4;
  options.fanout = 4;  // N = 341 nodes
  GeneratedHierarchy h = GenerateHierarchy(
      Rectangle(0, 0, 1000, 1000), options, &pool_,
      RelationLayout::kClustered);
  // A small selector in one corner prunes most of the tree.
  Value selector(Rectangle(10, 10, 20, 20));
  OverlapsOp op;
  SelectResult result = SpatialSelect(selector, *h.tree, op, GetParam());
  EXPECT_LT(result.theta_upper_tests, h.tree->num_nodes() / 2);
  EXPECT_GT(result.theta_upper_tests, 0);
}

INSTANTIATE_TEST_SUITE_P(Traversals, SelectOnHierarchyTest,
                         ::testing::Values(Traversal::kBreadthFirst,
                                           Traversal::kDepthFirst),
                         [](const auto& param_info) {
                           return param_info.param == Traversal::kBreadthFirst
                                      ? "Bfs"
                                      : "Dfs";
                         });

TEST(SelectTest, BfsAndDfsFindSameMatches) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);
  HierarchyOptions options;
  options.height = 3;
  options.fanout = 5;
  GeneratedHierarchy h = GenerateHierarchy(
      Rectangle(0, 0, 100, 100), options, &pool,
      RelationLayout::kClustered);
  OverlapsOp op;
  Value selector(Rectangle(20, 20, 60, 60));
  SelectResult bfs =
      SpatialSelect(selector, *h.tree, op, Traversal::kBreadthFirst);
  SelectResult dfs =
      SpatialSelect(selector, *h.tree, op, Traversal::kDepthFirst);
  EXPECT_EQ(Sorted(bfs.matching_tuples), Sorted(dfs.matching_tuples));
  // Identical work, different order.
  EXPECT_EQ(bfs.theta_upper_tests, dfs.theta_upper_tests);
  EXPECT_EQ(bfs.theta_tests, dfs.theta_tests);
}

TEST(SelectTest, WorksOnRTreeAdapter) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 512);
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  Relation rel("data", schema, &pool);
  RTree rtree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 500, 500), 808);
  for (int64_t i = 0; i < 400; ++i) {
    Rectangle r = gen.NextRect(1, 15);
    TupleId tid = rel.Insert(Tuple({Value(i), Value(r)}));
    rtree.Insert(r, tid);
  }
  RTreeGenTree adapter(&rtree, &rel, 1);

  OverlapsOp op;
  for (int q = 0; q < 10; ++q) {
    Value selector(gen.NextRect(10, 80));
    SelectResult result = SpatialSelect(selector, adapter, op);
    // Ground truth from the R-tree's native search (overlap windows).
    std::vector<TupleId> expected =
        rtree.SearchTids(selector.AsRectangle());
    EXPECT_EQ(Sorted(result.matching_tuples), Sorted(expected));
  }
}

TEST(SelectTest, SelectorOutsideWorldFindsNothingCheaply) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);
  HierarchyOptions options;
  options.height = 3;
  options.fanout = 4;
  GeneratedHierarchy h = GenerateHierarchy(
      Rectangle(0, 0, 100, 100), options, &pool,
      RelationLayout::kClustered);
  OverlapsOp op;
  SelectResult result =
      SpatialSelect(Value(Rectangle(500, 500, 510, 510)), *h.tree, op);
  EXPECT_TRUE(result.matching_tuples.empty());
  EXPECT_EQ(result.theta_upper_tests, 1);  // pruned at the root
}

TEST(SelectTest, AgreesWithNestedLoopSelectOnRelation) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);
  HierarchyOptions options;
  options.height = 3;
  options.fanout = 4;
  GeneratedHierarchy h = GenerateHierarchy(
      Rectangle(0, 0, 100, 100), options, &pool,
      RelationLayout::kClustered);
  WithinDistanceOp op(20.0);
  Value selector(Rectangle(40, 40, 50, 50));
  SelectResult tree_result = SpatialSelect(selector, *h.tree, op);
  JoinResult scan_result =
      NestedLoopSelect(selector, *h.relation, h.spatial_column, op);
  std::vector<TupleId> scan_tids;
  for (const auto& m : scan_result.matches) scan_tids.push_back(m.first);
  EXPECT_EQ(Sorted(tree_result.matching_tuples), Sorted(scan_tids));
  // The scan θ-tests everything; the tree must not do worse.
  EXPECT_LE(tree_result.theta_tests, scan_result.theta_tests);
}

}  // namespace
}  // namespace spatialjoin
