// Query-service integration tests (DESIGN.md §12): results over the wire
// are byte-identical to direct in-process execution, concurrent mixed
// clients all get correct replies, admission control rejects with
// backpressure, deadlines and cancels surface as DEADLINE_EXCEEDED /
// CANCELLED error replies, disconnects orphan-cancel cleanly, and the
// shared pool is quiescent after shutdown. The TSan CI job runs this
// suite as the service smoke test.

#include <gtest/gtest.h>

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/exec_audit.h"
#include "core/spatial_join.h"
#include "core/theta_ops.h"
#include "exec/frozen_tree.h"
#include "exec/thread_pool.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "json_validator.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/telemetry.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace server {
namespace {

struct FrozenPair {
  exec::FrozenTree r;
  exec::FrozenTree s;
};

// Builds a pair of generalization-tree snapshots from synthetic
// rectangle relations. The storage stack is local and discarded: a
// FrozenTree copies everything it needs, which is exactly why the server
// serves snapshots.
FrozenPair MakeFrozenPair(uint64_t seed_r, uint64_t seed_s, int64_t tuples) {
  DiskManager disk(4000);
  BufferPool pool(&disk, 2048);
  Rectangle world(0, 0, 600, 600);
  Schema schema({{"id", ValueType::kInt64}, {"box", ValueType::kRectangle}});
  Relation r("r", schema, &pool);
  Relation s("s", schema, &pool);
  RTree r_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RTree s_rtree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen_r(world, seed_r);
  RectGenerator gen_s(world, seed_s);
  for (int64_t i = 0; i < tuples; ++i) {
    Rectangle box_r = gen_r.NextRect(2, 30);
    Rectangle box_s = gen_s.NextRect(2, 30);
    r_rtree.Insert(box_r, r.Insert(Tuple({Value(i), Value(box_r)})));
    s_rtree.Insert(box_s, s.Insert(Tuple({Value(i), Value(box_s)})));
  }
  RTreeGenTree r_adapter(&r_rtree, &r, 1);
  RTreeGenTree s_adapter(&s_rtree, &s, 1);
  return {exec::FrozenTree::Materialize(r_adapter),
          exec::FrozenTree::Materialize(s_adapter)};
}

SelectRequest OverlapSelect(uint32_t dataset_id, const Rectangle& window) {
  SelectRequest request;
  request.dataset_id = dataset_id;
  request.strategy = SelectStrategy::kTree;
  request.op_code = static_cast<uint8_t>(WireOp::kOverlaps);
  request.selector = window;
  return request;
}

JoinRequest OverlapJoin(uint32_t dataset_id) {
  JoinRequest request;
  request.dataset_id = dataset_id;
  request.strategy = JoinStrategy::kTreeJoin;
  request.op_code = static_cast<uint8_t>(WireOp::kOverlaps);
  return request;
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : pool_(4) {}

  // Starts a server over `pool_` with dataset 0 = the small pair and
  // (optionally) dataset 1 = a heavy pair whose all-matching
  // within-distance join runs long enough to cancel or deadline
  // deterministically.
  void StartServer(Server::Options options, bool with_heavy = false) {
    server_ = std::make_unique<Server>(&pool_, options);
    FrozenPair ours = MakeFrozenPair(41, 42, 200);
    direct_ = std::make_unique<FrozenPair>(MakeFrozenPair(41, 42, 200));
    ASSERT_EQ(server_->RegisterDataset(std::move(ours.r), std::move(ours.s)),
              0u);
    if (with_heavy) {
      FrozenPair heavy = MakeFrozenPair(51, 52, 2500);
      ASSERT_EQ(
          server_->RegisterDataset(std::move(heavy.r), std::move(heavy.s)),
          1u);
    }
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<ServiceClient> Connect() {
    Result<std::unique_ptr<ServiceClient>> client =
        ServiceClient::Connect(server_->socket_path());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  // Direct in-process execution over an identically-built snapshot pair —
  // the ground truth the wire results must reproduce byte for byte.
  JoinResult DirectSelect(const SelectRequest& request) {
    SpatialJoinContext ctx;
    ctx.s_tree = &direct_->s;
    ctx.exec_pool = &pool_;
    Result<std::unique_ptr<ThetaOperator>> op =
        MakeWireOperator(request.op_code, request.op_param);
    return ExecuteSelect(request.strategy, ctx, Value(request.selector),
                         kInvalidTupleId, *op.value());
  }

  JoinResult DirectJoin(const JoinRequest& request) {
    SpatialJoinContext ctx;
    ctx.r_tree = &direct_->r;
    ctx.s_tree = &direct_->s;
    ctx.exec_pool = &pool_;
    Result<std::unique_ptr<ThetaOperator>> op =
        MakeWireOperator(request.op_code, request.op_param);
    return ExecuteJoin(request.strategy, ctx, *op.value());
  }

  static void ExpectSameResult(const Reply& reply, const JoinResult& truth) {
    ASSERT_EQ(reply.type, MessageType::kResult) << reply.error_message;
    EXPECT_EQ(reply.result.matches, truth.matches);
    EXPECT_EQ(reply.result.theta_upper_tests, truth.theta_upper_tests);
    EXPECT_EQ(reply.result.theta_tests, truth.theta_tests);
    EXPECT_EQ(reply.result.nodes_accessed, truth.nodes_accessed);
    EXPECT_EQ(reply.result.qual_pairs_examined, truth.qual_pairs_examined);
  }

  exec::ThreadPool pool_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<FrozenPair> direct_;
};

TEST_F(ServerTest, PingRoundTrip) {
  StartServer({});
  std::unique_ptr<ServiceClient> client = Connect();
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, SelectIsByteIdenticalToDirectExecution) {
  StartServer({});
  std::unique_ptr<ServiceClient> client = Connect();
  const Rectangle windows[] = {Rectangle(100, 100, 400, 400),
                               Rectangle(0, 0, 50, 50),
                               Rectangle(0, 0, 600, 600)};
  for (const Rectangle& window : windows) {
    for (SelectStrategy strategy :
         {SelectStrategy::kTree, SelectStrategy::kParallelTree}) {
      SelectRequest request = OverlapSelect(0, window);
      request.strategy = strategy;
      Result<Reply> reply = client->Select(request);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ExpectSameResult(reply.value(), DirectSelect(request));
    }
  }
}

TEST_F(ServerTest, JoinIsByteIdenticalToDirectExecution) {
  StartServer({});
  std::unique_ptr<ServiceClient> client = Connect();
  for (JoinStrategy strategy :
       {JoinStrategy::kTreeJoin, JoinStrategy::kParallelTreeJoin}) {
    for (uint8_t op_code = 1; op_code <= 6; ++op_code) {
      JoinRequest request = OverlapJoin(0);
      request.strategy = strategy;
      request.op_code = op_code;
      request.op_param = 12.0;  // within_distance uses it; others ignore
      Result<Reply> reply = client->Join(request);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ExpectSameResult(reply.value(), DirectJoin(request));
    }
  }
}

TEST_F(ServerTest, BadRequestsGetTypedErrorReplies) {
  StartServer({});
  std::unique_ptr<ServiceClient> client = Connect();

  Result<Reply> reply = client->Join(OverlapJoin(99));  // unknown dataset
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, MessageType::kError);
  EXPECT_EQ(reply.value().error_code, StatusCode::kNotFound);

  JoinRequest nested = OverlapJoin(0);
  nested.strategy = JoinStrategy::kNestedLoop;  // valid enum, not served
  reply = client->Join(nested);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, MessageType::kError);
  EXPECT_EQ(reply.value().error_code, StatusCode::kInvalidArgument);

  SelectRequest bad_op = OverlapSelect(0, Rectangle(0, 0, 1, 1));
  bad_op.op_code = 200;
  reply = client->Select(bad_op);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, MessageType::kError);
  EXPECT_EQ(reply.value().error_code, StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, ConcurrentMixedClientsAllGetCorrectReplies) {
  // Admission effectively unbounded: this test pins correctness under
  // concurrency; the backpressure test below pins the bound.
  Server::Options options;
  options.max_inflight = 1 << 20;
  StartServer(options);

  const SelectRequest select_request =
      OverlapSelect(0, Rectangle(100, 100, 400, 400));
  const JoinRequest join_request = OverlapJoin(0);
  const JoinResult select_truth = DirectSelect(select_request);
  const JoinResult join_truth = DirectJoin(join_request);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 24;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<std::unique_ptr<ServiceClient>> client =
          ServiceClient::Connect(server_->socket_path());
      if (!client.ok()) {
        failures[c] = 1000;
        return;
      }
      // Pipeline everything, then collect out-of-order.
      std::vector<uint64_t> ids;
      std::vector<bool> is_join;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const bool join = (i + c) % 2 == 0;
        Result<uint64_t> id =
            join ? client.value()->SendJoin(join_request)
                 : client.value()->SendSelect(select_request);
        if (!id.ok()) {
          ++failures[c];
          continue;
        }
        ids.push_back(id.value());
        is_join.push_back(join);
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        Result<Reply> reply = client.value()->WaitReply(ids[i]);
        if (!reply.ok() || reply.value().type != MessageType::kResult) {
          ++failures[c];
          continue;
        }
        const JoinResult& truth = is_join[i] ? join_truth : select_truth;
        if (reply.value().result.matches != truth.matches) ++failures[c];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }

  // A reply is written before the scheduler retires its slot, so drain
  // briefly: the last replies may still be microseconds ahead of their
  // `completed` increments.
  QueryScheduler::Stats stats = server_->scheduler_stats();
  for (int spin = 0; spin < 2000 && stats.completed != stats.admitted;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = server_->scheduler_stats();
  }
  EXPECT_EQ(stats.admitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.completed, stats.admitted);
}

TEST_F(ServerTest, BackpressureRejectsBeyondTheInflightBound) {
  // One slot only. The first (heavy) join occupies it; the session reader
  // admits requests inline and in order, so every select pipelined behind
  // the join is decoded while the join still runs — each must bounce with
  // RESOURCE_EXHAUSTED rather than queue.
  Server::Options options;
  options.max_inflight = 1;
  StartServer(options, /*with_heavy=*/true);
  std::unique_ptr<ServiceClient> client = Connect();

  JoinRequest heavy = OverlapJoin(1);
  heavy.op_code = static_cast<uint8_t>(WireOp::kWithinDistance);
  heavy.op_param = 1200.0;  // every pair qualifies: a long, steady join
  Result<uint64_t> heavy_id = client->SendJoin(heavy);
  ASSERT_TRUE(heavy_id.ok());

  constexpr int kProbes = 20;
  std::vector<uint64_t> probe_ids;
  for (int i = 0; i < kProbes; ++i) {
    Result<uint64_t> id =
        client->SendSelect(OverlapSelect(0, Rectangle(0, 0, 10, 10)));
    ASSERT_TRUE(id.ok());
    probe_ids.push_back(id.value());
  }

  int rejected = 0;
  for (uint64_t id : probe_ids) {
    Result<Reply> reply = client->WaitReply(id);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply.value().type == MessageType::kError) {
      EXPECT_EQ(reply.value().error_code, StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GE(server_->scheduler_stats().rejected, rejected);

  // The heavy query is undeliverable in one frame (every pair matched);
  // what matters here is that it *completes* and frees its slot.
  Result<Reply> heavy_reply = client->WaitReply(heavy_id.value());
  ASSERT_TRUE(heavy_reply.ok());
}

TEST_F(ServerTest, CancelMidFlightReturnsCancelled) {
  StartServer({}, /*with_heavy=*/true);
  std::unique_ptr<ServiceClient> client = Connect();

  JoinRequest heavy = OverlapJoin(1);
  heavy.op_code = static_cast<uint8_t>(WireOp::kWithinDistance);
  heavy.op_param = 1200.0;  // 2500×2500 all-match: seconds of work
  Result<uint64_t> id = client->SendJoin(heavy);
  ASSERT_TRUE(id.ok());

  // The reader admits the join before it decodes the cancel (same
  // pipeline, in order), and the join runs far longer than the gap, so
  // the cancel lands mid-flight deterministically.
  ASSERT_TRUE(client->Cancel(id.value()).ok());

  Result<Reply> reply = client->WaitReply(id.value());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, MessageType::kError);
  EXPECT_EQ(reply.value().error_code, StatusCode::kCancelled);
}

TEST_F(ServerTest, PastDeadlineQueryReturnsDeadlineExceeded) {
  StartServer({}, /*with_heavy=*/true);
  std::unique_ptr<ServiceClient> client = Connect();

  JoinRequest heavy = OverlapJoin(1);
  heavy.op_code = static_cast<uint8_t>(WireOp::kWithinDistance);
  heavy.op_param = 1200.0;
  heavy.deadline_ns = 2'000'000;  // 2ms against seconds of work

  Result<Reply> reply = client->Join(heavy);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, MessageType::kError);
  EXPECT_EQ(reply.value().error_code, StatusCode::kDeadlineExceeded);
}

TEST_F(ServerTest, ServerDefaultDeadlineAppliesWhenRequestCarriesNone) {
  Server::Options options;
  options.default_deadline_ns = 2'000'000;
  StartServer(options, /*with_heavy=*/true);
  std::unique_ptr<ServiceClient> client = Connect();

  JoinRequest heavy = OverlapJoin(1);
  heavy.op_code = static_cast<uint8_t>(WireOp::kWithinDistance);
  heavy.op_param = 1200.0;  // no per-request deadline
  Result<Reply> reply = client->Join(heavy);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, MessageType::kError);
  EXPECT_EQ(reply.value().error_code, StatusCode::kDeadlineExceeded);
}

TEST_F(ServerTest, DisconnectMidFlightCancelsOrphanedQueries) {
  StartServer({}, /*with_heavy=*/true);
  {
    std::unique_ptr<ServiceClient> client = Connect();
    JoinRequest heavy = OverlapJoin(1);
    heavy.op_code = static_cast<uint8_t>(WireOp::kWithinDistance);
    heavy.op_param = 1200.0;
    ASSERT_TRUE(client->SendJoin(heavy).ok());
    // Client vanishes with the join in flight.
  }
  // Stop() drains the scheduler: if the orphaned query were not
  // cancelled, this would sit through seconds of doomed work; with the
  // disconnect-cancel it returns at the next level boundary. Completing
  // promptly *is* the assertion (and the exec audit below pins the
  // cleanliness).
  server_->Stop();
  audit::AuditReport report = audit::AuditThreadPool(pool_);
  EXPECT_TRUE(report.ok()) << report.ToJson();
  EXPECT_TRUE(pool_.Quiescent());
}

TEST_F(ServerTest, GarbageStreamGetsErrorReplyThenDisconnect) {
  StartServer({});

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ::memcpy(addr.sun_path, server_->socket_path().c_str(),
           server_->socket_path().size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);

  const std::string garbage(64, '\x5a');
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));

  // The server answers with one connection-level error frame (request id
  // 0), then closes.
  std::string bytes;
  char buf[512];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes).ok());
  Frame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.type, static_cast<uint8_t>(MessageType::kError));
  EXPECT_EQ(frame.request_id, 0u);
  Result<Reply> reply =
      DecodeReply(MessageType::kError, frame.request_id, frame.payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().error_code, StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, StatsRoundTripReflectsTheWorkload) {
  // ServiceTelemetry is process-global and cumulative across the tests
  // in this binary; reset so the counts below are this test's own.
  ServiceTelemetry::Global().Reset();
  StartServer({});
  std::unique_ptr<ServiceClient> client = Connect();

  for (int i = 0; i < 3; ++i) {
    Result<Reply> reply =
        client->Select(OverlapSelect(0, Rectangle(100, 100, 400, 400)));
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply.value().type, MessageType::kResult);
  }
  Result<Reply> join_reply = client->Join(OverlapJoin(0));
  ASSERT_TRUE(join_reply.ok());
  ASSERT_EQ(join_reply.value().type, MessageType::kResult);

  // A reply reaches the client before the scheduler's completion
  // bookkeeping necessarily finishes, so "completed" may briefly trail
  // the 4 replies observed above: poll until it drains (bounded).
  std::string json;
  for (int attempt = 0; attempt < 200; ++attempt) {
    Result<std::string> stats = client->Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    json = stats.value();
    if (json.find("\"completed\": 4") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(testing_json::IsValidJson(json)) << json;

  // Spot-check the load-bearing leaves without a full parser: exact
  // key/value fragments of the serializer's stable formatting. The
  // scheduler section is this server instance's own; registry-backed
  // totals ("queries") are process-cumulative across the suite, so the
  // per-session aggregate — reset above — carries the exact ok count.
  EXPECT_NE(json.find("\"stats_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"admitted\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"inflight\": 0"), std::string::npos) << json;
  const size_t per_session = json.find("\"per_session\"");
  ASSERT_NE(per_session, std::string::npos);
  EXPECT_NE(json.find("\"ok\": 4", per_session), std::string::npos) << json;
  EXPECT_NE(json.find("\"slow_by_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"tree_join\""), std::string::npos) << json;

  // STATS is answered inline by the reader thread: it must not count as
  // an admitted query, and repeated polls stay consistent.
  Result<std::string> again = client->Stats();
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value().find("\"admitted\": 4"), std::string::npos);
}

TEST_F(ServerTest, StatsWithPayloadIsRejected) {
  StartServer({});

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ::memcpy(addr.sun_path, server_->socket_path().c_str(),
           server_->socket_path().size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);

  // Hand-build a STATS frame that illegally carries a payload byte.
  std::string wire = EncodeStatsRequest(5);
  wire[0] = 1;  // payload_len = 1
  wire.push_back('x');
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  // Unlike the garbage-stream case this is a *request-level* error: the
  // reply arrives under the request's id and the connection stays open,
  // so read exactly one frame rather than draining to EOF.
  FrameDecoder decoder;
  Frame frame;
  char buf[512];
  bool got_frame = false;
  while (!got_frame) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    ASSERT_TRUE(decoder.Feed(std::string_view(buf, static_cast<size_t>(n)))
                    .ok());
    got_frame = decoder.Next(&frame);
  }
  ::close(fd);
  EXPECT_EQ(frame.type, static_cast<uint8_t>(MessageType::kError));
  EXPECT_EQ(frame.request_id, 5u);
  Result<Reply> reply =
      DecodeReply(MessageType::kError, frame.request_id, frame.payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().error_code, StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, StopIsIdempotentAndRestartOnSamePathWorks) {
  Server::Options options;
  options.socket_path = Server::DefaultSocketPath();
  StartServer(options);
  {
    std::unique_ptr<ServiceClient> client = Connect();
    EXPECT_TRUE(client->Ping().ok());
  }
  server_->Stop();
  server_->Stop();  // idempotent

  // A fresh server may reuse the path (stale-socket unlink on bind).
  Server second(&pool_, options);
  FrozenPair pair = MakeFrozenPair(61, 62, 50);
  second.RegisterDataset(std::move(pair.r), std::move(pair.s));
  ASSERT_TRUE(second.Start().ok());
  Result<std::unique_ptr<ServiceClient>> client =
      ServiceClient::Connect(second.socket_path());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->Ping().ok());
}

}  // namespace
}  // namespace server
}  // namespace spatialjoin
