#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/clustered_file.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace spatialjoin {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : disk_(512), pool_(&disk_, 16) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, InsertAndRead) {
  HeapFile file(&pool_);
  RecordId r0 = file.Insert("alpha");
  RecordId r1 = file.Insert("beta");
  std::string out;
  ASSERT_TRUE(file.Read(r0, &out));
  EXPECT_EQ(out, "alpha");
  ASSERT_TRUE(file.Read(r1, &out));
  EXPECT_EQ(out, "beta");
  EXPECT_EQ(file.num_records(), 2);
}

TEST_F(HeapFileTest, SpillsToMultiplePages) {
  HeapFile file(&pool_);
  std::string record(100, 'r');
  std::vector<RecordId> rids;
  for (int i = 0; i < 50; ++i) rids.push_back(file.Insert(record));
  EXPECT_GT(file.num_pages(), 5);
  std::string out;
  for (const RecordId& rid : rids) {
    ASSERT_TRUE(file.Read(rid, &out));
    EXPECT_EQ(out, record);
  }
}

TEST_F(HeapFileTest, DeleteHidesRecord) {
  HeapFile file(&pool_);
  RecordId rid = file.Insert("gone");
  EXPECT_TRUE(file.Delete(rid));
  std::string out;
  EXPECT_FALSE(file.Read(rid, &out));
  EXPECT_FALSE(file.Delete(rid));
  EXPECT_EQ(file.num_records(), 0);
}

TEST_F(HeapFileTest, ScanVisitsLiveRecordsInOrder) {
  HeapFile file(&pool_);
  std::vector<RecordId> rids;
  for (int i = 0; i < 20; ++i) {
    rids.push_back(file.Insert("rec-" + std::to_string(i)));
  }
  file.Delete(rids[3]);
  file.Delete(rids[17]);
  std::vector<std::string> seen;
  file.Scan([&](const RecordId&, std::string_view bytes) {
    seen.emplace_back(bytes);
  });
  EXPECT_EQ(seen.size(), 18u);
  EXPECT_EQ(seen[0], "rec-0");
  EXPECT_EQ(seen[3], "rec-4");  // rec-3 deleted
}

TEST_F(HeapFileTest, ScanSurvivesPoolPressure) {
  // A pool barely larger than one page forces evictions mid-scan.
  DiskManager small_disk(512);
  BufferPool small_pool(&small_disk, 2);
  HeapFile file(&small_pool);
  for (int i = 0; i < 40; ++i) file.Insert(std::string(100, static_cast<char>('a' + i % 26)));
  int count = 0;
  file.Scan([&](const RecordId&, std::string_view) { ++count; });
  EXPECT_EQ(count, 40);
}

TEST(ClusteredFileTest, PreservesLoadOrder) {
  DiskManager disk(512);
  BufferPool pool(&disk, 16);
  ClusteredFile file(&pool);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(file.Append("row-" + std::to_string(i)), i);
  }
  std::string out;
  file.Read(17, &out);
  EXPECT_EQ(out, "row-17");
  std::vector<int64_t> order;
  file.Scan([&](int64_t ordinal, std::string_view) {
    order.push_back(ordinal);
  });
  EXPECT_EQ(order.size(), 30u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int64_t>(i));
  }
}

TEST(ClusteredFileTest, ConsecutiveRecordsSharePages) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 16);
  ClusteredFile file(&pool);
  std::string record(300, 'x');  // paper tuple size
  for (int i = 0; i < 30; ++i) file.Append(record);
  // 2000-byte pages fit 6 records of 300+8 bytes: neighbors share pages.
  EXPECT_EQ(file.RidOf(0).page_id, file.RidOf(1).page_id);
  EXPECT_LE(file.num_pages(), 6);
}

TEST(ClusteredFileTest, FillFactorLimitsUtilization) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 16);
  ClusteredFile full(&pool, 1.0);
  ClusteredFile partial(&pool, 0.75);
  std::string record(300, 'y');
  for (int i = 0; i < 24; ++i) {
    full.Append(record);
    partial.Append(record);
  }
  // l = 0.75 on 2000-byte pages with 300-byte tuples gives the paper's
  // m ≈ 5 tuples per page versus 6 at full utilization.
  EXPECT_GT(partial.num_pages(), full.num_pages());
  EXPECT_EQ(partial.num_pages(), 24 / 4);  // ⌊2000·0.75/308⌋ = 4 per page
}

}  // namespace
}  // namespace spatialjoin
