#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

// Parameterized over both split algorithms.
class RTreeSplitTest : public ::testing::TestWithParam<RTreeSplit> {
 protected:
  RTreeSplitTest() : disk_(2000), pool_(&disk_, 512) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_P(RTreeSplitTest, InsertSearchSmall) {
  RTree tree(&pool_, GetParam(), 8);
  tree.Insert(Rectangle(0, 0, 1, 1), 1);
  tree.Insert(Rectangle(5, 5, 6, 6), 2);
  tree.Insert(Rectangle(0.5, 0.5, 2, 2), 3);
  std::vector<TupleId> hits = tree.SearchTids(Rectangle(0, 0, 1.2, 1.2));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<TupleId>{1, 3}));
  EXPECT_TRUE(tree.SearchTids(Rectangle(10, 10, 11, 11)).empty());
  tree.CheckInvariants();
}

TEST_P(RTreeSplitTest, SearchMatchesBruteForce) {
  RTree tree(&pool_, GetParam(), 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 17);
  std::vector<Rectangle> data = gen.Rects(500, 1, 30);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], static_cast<TupleId>(i));
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.num_entries(), 500);
  EXPECT_GE(tree.height(), 2);
  for (int q = 0; q < 50; ++q) {
    Rectangle window = gen.NextRect(10, 150);
    std::vector<TupleId> hits = tree.SearchTids(window);
    std::vector<TupleId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Overlaps(window)) {
        expected.push_back(static_cast<TupleId>(i));
      }
    }
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, expected) << "window " << window.ToString();
  }
}

TEST_P(RTreeSplitTest, DeleteMaintainsInvariantsAndResults) {
  RTree tree(&pool_, GetParam(), 8);
  RectGenerator gen(Rectangle(0, 0, 500, 500), 29);
  std::vector<Rectangle> data = gen.Rects(300, 1, 20);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], static_cast<TupleId>(i));
  }
  // Delete every third entry.
  std::set<TupleId> deleted;
  for (size_t i = 0; i < data.size(); i += 3) {
    ASSERT_TRUE(tree.Delete(data[i], static_cast<TupleId>(i))) << i;
    deleted.insert(static_cast<TupleId>(i));
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.num_entries(), 200);
  // Deleted entries are gone, others remain findable.
  Rectangle everything(0, 0, 500, 500);
  std::vector<TupleId> hits = tree.SearchTids(everything);
  EXPECT_EQ(hits.size(), 200u);
  for (TupleId tid : hits) EXPECT_FALSE(deleted.count(tid));
  // Deleting a non-existent entry fails cleanly.
  EXPECT_FALSE(tree.Delete(Rectangle(0, 0, 1, 1), 99999));
}

TEST_P(RTreeSplitTest, DeleteToEmptyAndReuse) {
  RTree tree(&pool_, GetParam(), 4);
  std::vector<Rectangle> rects;
  for (int i = 0; i < 40; ++i) {
    Rectangle r(i, i, i + 1.0, i + 1.0);
    rects.push_back(r);
    tree.Insert(r, i);
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(tree.Delete(rects[static_cast<size_t>(i)], i));
  }
  EXPECT_EQ(tree.num_entries(), 0);
  EXPECT_TRUE(tree.SearchTids(Rectangle(0, 0, 100, 100)).empty());
  // The tree remains usable.
  tree.Insert(Rectangle(1, 1, 2, 2), 7);
  EXPECT_EQ(tree.SearchTids(Rectangle(0, 0, 3, 3)),
            std::vector<TupleId>{7});
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Splits, RTreeSplitTest,
                         ::testing::Values(RTreeSplit::kLinear,
                                           RTreeSplit::kQuadratic,
                                           RTreeSplit::kRStar),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case RTreeSplit::kLinear:
                               return "Linear";
                             case RTreeSplit::kQuadratic:
                               return "Quadratic";
                             default:
                               return "RStar";
                           }
                         });

TEST(RTreeTest, RootMbrCoversEverything) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 128);
  RTree tree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 100, 100), 3);
  Rectangle bound;
  for (int i = 0; i < 100; ++i) {
    Rectangle r = gen.NextRect(1, 5);
    bound.Extend(r);
    tree.Insert(r, i);
  }
  EXPECT_EQ(tree.RootMbr(), bound);
}

TEST(RTreeTest, SearchCountsPageIo) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 512);
  RTree tree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 5);
  for (int i = 0; i < 1000; ++i) tree.Insert(gen.NextRect(1, 5), i);
  ASSERT_TRUE(pool.Clear().ok());
  BufferPoolStats before = pool.stats();
  tree.SearchTids(Rectangle(0, 0, 50, 50));
  BufferPoolStats after = pool.stats();
  int64_t faults = after.misses - before.misses;
  // A small window touches few pages; a full scan touches all nodes.
  EXPECT_GT(faults, 0);
  EXPECT_LT(faults, tree.num_nodes());
}

TEST(RTreeBulkLoadTest, StrPackingMatchesBruteForce) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 1024);
  RTree tree(&pool, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 41);
  std::vector<std::pair<Rectangle, TupleId>> entries;
  for (int64_t i = 0; i < 700; ++i) {
    entries.emplace_back(gen.NextRect(1, 20), i);
  }
  tree.BulkLoadStr(entries);
  tree.CheckInvariants();
  EXPECT_EQ(tree.num_entries(), 700);
  for (int q = 0; q < 30; ++q) {
    Rectangle window = gen.NextRect(20, 150);
    std::vector<TupleId> hits = tree.SearchTids(window);
    std::vector<TupleId> expected;
    for (const auto& [mbr, tid] : entries) {
      if (mbr.Overlaps(window)) expected.push_back(tid);
    }
    std::sort(hits.begin(), hits.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hits, expected);
  }
}

TEST(RTreeBulkLoadTest, PacksTighterThanInsertion) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 2048);
  RectGenerator gen(Rectangle(0, 0, 1000, 1000), 43);
  std::vector<std::pair<Rectangle, TupleId>> entries;
  for (int64_t i = 0; i < 2000; ++i) {
    entries.emplace_back(gen.NextRect(1, 10), i);
  }
  RTree inserted(&pool, RTreeSplit::kQuadratic, 8);
  for (const auto& [mbr, tid] : entries) inserted.Insert(mbr, tid);
  RTree packed(&pool, RTreeSplit::kQuadratic, 8);
  packed.BulkLoadStr(entries);
  packed.CheckInvariants();
  // Full packing needs strictly fewer nodes than ~60%-full insertion.
  EXPECT_LT(packed.num_nodes(), inserted.num_nodes());
}

TEST(RTreeBulkLoadTest, SmallAndDegenerateInputs) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);
  {
    RTree tree(&pool, RTreeSplit::kQuadratic, 8);
    tree.BulkLoadStr({});
    EXPECT_EQ(tree.num_entries(), 0);
    EXPECT_TRUE(tree.SearchTids(Rectangle(0, 0, 1, 1)).empty());
  }
  {
    RTree tree(&pool, RTreeSplit::kQuadratic, 8);
    tree.BulkLoadStr({{Rectangle(1, 1, 2, 2), 7}});
    EXPECT_EQ(tree.num_entries(), 1);
    EXPECT_EQ(tree.height(), 1);
    EXPECT_EQ(tree.SearchTids(Rectangle(0, 0, 3, 3)),
              std::vector<TupleId>{7});
    tree.CheckInvariants();
  }
  {
    // 9 entries with fan-out 8: the 1-entry remainder must be folded so
    // no node underflows.
    RTree tree(&pool, RTreeSplit::kQuadratic, 8);
    std::vector<std::pair<Rectangle, TupleId>> entries;
    for (int64_t i = 0; i < 9; ++i) {
      double x = static_cast<double>(i);
      entries.emplace_back(Rectangle(x, 0, x + 0.5, 1), i);
    }
    tree.BulkLoadStr(entries);
    tree.CheckInvariants();
    EXPECT_EQ(tree.SearchTids(Rectangle(0, 0, 10, 1)).size(), 9u);
  }
}

TEST(RTreeBulkLoadTest, FillFactorControlsPacking) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 1024);
  RectGenerator gen(Rectangle(0, 0, 500, 500), 45);
  std::vector<std::pair<Rectangle, TupleId>> entries;
  for (int64_t i = 0; i < 640; ++i) {
    entries.emplace_back(gen.NextRect(1, 5), i);
  }
  RTree full(&pool, RTreeSplit::kQuadratic, 8);
  full.BulkLoadStr(entries, 1.0);
  RTree loose(&pool, RTreeSplit::kQuadratic, 8);
  loose.BulkLoadStr(entries, 0.5);
  full.CheckInvariants();
  loose.CheckInvariants();
  EXPECT_LT(full.num_nodes(), loose.num_nodes());
}

TEST(RTreeBulkLoadDeathTest, RejectsNonEmptyTree) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);
  RTree tree(&pool, RTreeSplit::kQuadratic, 8);
  tree.Insert(Rectangle(0, 0, 1, 1), 0);
  EXPECT_DEATH(tree.BulkLoadStr({{Rectangle(2, 2, 3, 3), 1}}),
               "empty tree");
}

class RTreeGenTreeTest : public ::testing::Test {
 protected:
  RTreeGenTreeTest() : disk_(2000), pool_(&disk_, 512) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(RTreeGenTreeTest, StructureMatchesRTree) {
  RTree rtree(&pool_, RTreeSplit::kQuadratic, 8);
  RectGenerator gen(Rectangle(0, 0, 100, 100), 9);
  for (int i = 0; i < 200; ++i) rtree.Insert(gen.NextRect(1, 5), i);
  RTreeGenTree adapter(&rtree, nullptr, 0);

  EXPECT_EQ(adapter.height(), rtree.height());
  EXPECT_EQ(adapter.HeightOf(adapter.root()), 0);
  EXPECT_FALSE(adapter.IsApplicationNode(adapter.root()));

  // Walk the whole tree; count application nodes = data entries, check
  // the containment invariant and height bookkeeping.
  int64_t app_nodes = 0;
  std::vector<NodeId> stack{adapter.root()};
  while (!stack.empty()) {
    NodeId node = stack.back();
    stack.pop_back();
    Rectangle mbr = adapter.MbrOf(node);
    for (NodeId child : adapter.Children(node)) {
      EXPECT_TRUE(mbr.Contains(adapter.MbrOf(child)));
      EXPECT_EQ(adapter.HeightOf(child), adapter.HeightOf(node) + 1);
      stack.push_back(child);
    }
    if (adapter.IsApplicationNode(node)) {
      ++app_nodes;
      EXPECT_EQ(adapter.HeightOf(node), adapter.height());
      EXPECT_NE(adapter.TupleOf(node), kInvalidTupleId);
      EXPECT_TRUE(adapter.Children(node).empty());
    } else {
      EXPECT_EQ(adapter.TupleOf(node), kInvalidTupleId);
    }
  }
  EXPECT_EQ(app_nodes, rtree.num_entries());
}

}  // namespace
}  // namespace spatialjoin
