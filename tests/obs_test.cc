#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_validator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace spatialjoin {
namespace {

using testing_json::IsValidJson;

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAreAllCounted) {
  // Counters shard per thread: hammer one counter (and one shared
  // registry counter) from more threads than shards and verify the merged
  // total is exact once all writers joined.
  Counter local;
  MetricsRegistry registry;
  Counter* registered = registry.GetCounter("test.concurrent");
  constexpr int kThreads = Counter::kShards + 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&local, registered] {
      for (int i = 0; i < kIters; ++i) {
        local.Increment();
        registered->Increment(2);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(local.Value(), int64_t{kThreads} * kIters);
  EXPECT_EQ(registered->Value(), int64_t{2} * kThreads * kIters);
  EXPECT_EQ(registry.CounterValue("test.concurrent"),
            int64_t{2} * kThreads * kIters);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(1.5);
  g.Set(-3.0);
  EXPECT_DOUBLE_EQ(g.Value(), -3.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketsAndMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(100);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 106);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 4.0);
  // Bucket layout: b>=1 covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(h.bucket_count(1), 1);  // value 1
  EXPECT_EQ(h.bucket_count(2), 2);  // values 2, 3
  EXPECT_EQ(h.bucket_count(7), 1);  // value 100 in [64, 127]
}

TEST(HistogramTest, QuantileUpperBoundIsBucketCeiling) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(1);
  h.Record(1000);
  // p50 sits in the bucket holding the 1s; its ceiling is 1.
  EXPECT_EQ(h.QuantileUpperBound(0.5), 1);
  // p100 covers the outlier's bucket [512, 1023].
  EXPECT_EQ(h.QuantileUpperBound(1.0), 1023);
  // Quantiles are ceilings: every recorded value is <= its quantile bound.
  EXPECT_GE(h.QuantileUpperBound(1.0), h.max());
}

TEST(HistogramTest, NonPositiveValuesLandInBucketZero) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0);
}

TEST(ScopedTimerTest, RecordsElapsedIntoHistogramAndOut) {
  Histogram h;
  double elapsed_ns = 0.0;
  {
    ScopedTimer timer(&h, &elapsed_ns);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(elapsed_ns, 1e6);  // slept >= 2 ms, so > 1 ms measured
  EXPECT_GE(h.max(), static_cast<int64_t>(1e6));
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("test.counter");
  Counter* b = reg.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(reg.CounterValue("test.counter"), 7);
  EXPECT_EQ(reg.CounterValue("test.never_registered"), 0);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  Histogram* h = reg.GetHistogram("test.histogram");
  c->Increment(5);
  h->Record(9);
  reg.ResetAll();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(h->count(), 0);
  // Same pointer after reset — registrations survive.
  EXPECT_EQ(reg.GetCounter("test.counter"), c);
}

TEST(MetricsRegistryTest, JsonIsValidAndContainsInstruments) {
  MetricsRegistry reg;
  reg.GetCounter("a.counter")->Increment(3);
  reg.GetGauge("b.gauge")->Set(2.5);
  reg.GetHistogram("c.histogram")->Record(17);
  std::string json = reg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"a.counter\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"c.histogram\""), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsProcessWide) {
  Counter* c = MetricsRegistry::Global().GetCounter("obs_test.global");
  c->Increment();
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("obs_test.global"), 1);
  c->Reset();
}

TEST(JsonWriterTest, EscapesAndNesting) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.KV("quote\"back\\slash", std::string("line\nbreak"));
  w.Key("nested");
  w.BeginArray();
  w.Int(1);
  w.Double(2.5);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  std::string json = os.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  std::string json = os.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(QueryTraceTest, LevelsStaySortedAndTotalsSum) {
  QueryTrace trace("join", "unit test");
  trace.Level(2).worklist = 10;
  trace.Level(0).worklist = 1;
  trace.Level(1).worklist = 4;
  trace.Level(1).theta_upper_tests = 8;
  trace.Level(1).theta_tests = 3;
  trace.Level(2).pool_hits = 6;
  trace.Level(2).pool_misses = 2;

  ASSERT_EQ(trace.levels().size(), 3u);
  EXPECT_EQ(trace.levels()[0].height, 0);
  EXPECT_EQ(trace.levels()[1].height, 1);
  EXPECT_EQ(trace.levels()[2].height, 2);
  EXPECT_EQ(trace.TotalWorklist(), 15);
  EXPECT_EQ(trace.TotalThetaUpperTests(), 8);
  EXPECT_EQ(trace.TotalThetaTests(), 3);
  EXPECT_EQ(trace.TotalPoolHits(), 6);
  EXPECT_EQ(trace.TotalPoolMisses(), 2);
  EXPECT_DOUBLE_EQ(trace.PoolHitRate(), 6.0 / 8.0);
}

TEST(QueryTraceTest, LevelIsGetOrCreate) {
  QueryTrace trace("select");
  trace.Level(3).worklist = 5;
  trace.Level(3).worklist += 2;
  EXPECT_EQ(trace.levels().size(), 1u);
  EXPECT_EQ(trace.levels()[0].worklist, 7);
}

TEST(QueryTraceTest, JsonIsValid) {
  QueryTrace trace("join", "detail with \"quotes\"");
  trace.set_strategy("tree_join");
  trace.set_wall_ns(1234.5);
  trace.set_matches(9);
  trace.Level(0).worklist = 1;
  trace.Level(1).worklist = 12;
  std::string json = trace.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"tree_join\""), std::string::npos);
  EXPECT_NE(json.find("\"levels\""), std::string::npos);
}

TEST(QueryTraceTest, EmptyTraceHasZeroHitRate) {
  QueryTrace trace("join");
  EXPECT_DOUBLE_EQ(trace.PoolHitRate(), 0.0);
  EXPECT_TRUE(IsValidJson(trace.ToJson()));
}

}  // namespace
}  // namespace spatialjoin
