#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"

namespace spatialjoin {
namespace {

TEST(QuantileTest, SingleElementAllQuantiles) {
  std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(Quantile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(Quantile(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(Quantile(one, 1.0), 42.0);
}

TEST(QuantileTest, ExtremesReturnMinAndMax) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, LinearInterpolationBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, MedianOfOddCount) {
  std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
}

TEST(RunningStatTest, EmptyIsZeroed) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, SingleObservationHasZeroVariance) {
  RunningStat s;
  s.Add(7.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  // Sample variance uses the n-1 denominator; with one observation it is
  // defined as 0 rather than 0/0.
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, MatchesClosedFormOnSmallSeries) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Σ(x−μ)² = 32, sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

}  // namespace
}  // namespace spatialjoin
