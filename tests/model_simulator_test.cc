#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/stats.h"
#include "costmodel/join_cost.h"
#include "costmodel/select_cost.h"
#include "workload/model_simulator.h"

namespace spatialjoin {
namespace {

// Closed-form expected nodes examined by SELECT: 1 + Σ π_{h,i}·k^{i+1}.
double ExpectedExamined(const ModelParameters& params,
                        MatchDistribution dist) {
  PiTable pi(dist, params.n, params.k, params.p);
  double total = 1.0;
  for (int i = 0; i < params.n; ++i) {
    total += pi.pi(params.h, i) * DPow(params.k, i + 1);
  }
  return total;
}

ModelParameters SmallParams() {
  ModelParameters params;
  params.n = 4;
  params.k = 5;
  params.h = 4;
  params.p = 0.3;
  return params;
}

TEST(SimulateSelectTest, Deterministic) {
  ModelParameters params = SmallParams();
  SimulatedSelect a = SimulateSelect(params, MatchDistribution::kNoLoc, 7);
  SimulatedSelect b = SimulateSelect(params, MatchDistribution::kNoLoc, 7);
  EXPECT_EQ(a.nodes_examined, b.nodes_examined);
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.pages_unclustered, b.pages_unclustered);
}

TEST(SimulateSelectTest, CountersConsistent) {
  ModelParameters params = SmallParams();
  SimulatedSelect sim =
      SimulateSelect(params, MatchDistribution::kHiLoc, 11);
  EXPECT_GE(sim.nodes_examined, 1);
  EXPECT_LE(sim.matches, sim.nodes_examined);
  // Clustered placement never touches more pages than unclustered.
  EXPECT_LE(sim.pages_clustered, sim.pages_unclustered);
  // Pages touched cannot exceed non-root nodes examined.
  EXPECT_LE(sim.pages_unclustered, sim.nodes_examined - 1);
}

class SimulatorValidationTest
    : public ::testing::TestWithParam<MatchDistribution> {};

TEST_P(SimulatorValidationTest, MeanExaminedMatchesClosedForm) {
  // E1: Monte-Carlo means converge to the model's expectation.
  ModelParameters params = SmallParams();
  if (GetParam() == MatchDistribution::kUniform) {
    // Keep the variance manageable (UNIFORM couples at the root).
    params.p = 0.5;
  }
  double expected = ExpectedExamined(params, GetParam());
  RunningStat stat;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    stat.Add(static_cast<double>(
        SimulateSelect(params, GetParam(), 1000 + t).nodes_examined));
  }
  // Allow 5 standard errors.
  double stderr_mean = stat.stddev() / std::sqrt(double(trials));
  EXPECT_NEAR(stat.mean(), expected, 5.0 * stderr_mean + 1e-9)
      << MatchDistributionName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Distributions, SimulatorValidationTest,
                         ::testing::Values(MatchDistribution::kUniform,
                                           MatchDistribution::kNoLoc,
                                           MatchDistribution::kHiLoc),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case MatchDistribution::kUniform:
                               return "Uniform";
                             case MatchDistribution::kNoLoc:
                               return "NoLoc";
                             default:
                               return "HiLoc";
                           }
                         });

TEST(SimulateJoinTest, DeterministicAndConsistent) {
  ModelParameters params;
  params.n = 3;
  params.k = 4;
  params.p = 0.05;
  SimulatedJoin a = SimulateJoin(params, MatchDistribution::kNoLoc, 3);
  SimulatedJoin b = SimulateJoin(params, MatchDistribution::kNoLoc, 3);
  EXPECT_EQ(a.qual_pairs, b.qual_pairs);
  EXPECT_EQ(a.theta_evaluations, b.theta_evaluations);
  EXPECT_GE(a.qual_pairs, 1);  // the root pair always qualifies
  EXPECT_GE(a.theta_evaluations, a.qual_pairs);
}

TEST(SimulateJoinTest, MeanMatchesJoinComputeFormula) {
  ModelParameters params;
  params.n = 3;
  params.k = 4;
  params.p = 0.08;
  MatchDistribution dist = MatchDistribution::kNoLoc;
  JoinCosts costs = ComputeJoinCosts(params, dist);
  RunningStat stat;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    stat.Add(static_cast<double>(
        SimulateJoin(params, dist, 5000 + t).theta_evaluations));
  }
  double stderr_mean = stat.stddev() / std::sqrt(double(trials));
  EXPECT_NEAR(stat.mean(), costs.d_ii_compute / params.c_theta,
              5.0 * stderr_mean + 0.02 * costs.d_ii_compute)
      << "simulated mean " << stat.mean();
}

}  // namespace
}  // namespace spatialjoin
