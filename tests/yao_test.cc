#include <gtest/gtest.h>

#include "costmodel/yao.h"

namespace spatialjoin {
namespace {

TEST(YaoTest, BoundaryCases) {
  EXPECT_DOUBLE_EQ(Yao(0.0, 100.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(Yao(1000.0, 100.0, 1000.0), 100.0);  // x = z: all pages
  EXPECT_DOUBLE_EQ(Yao(2000.0, 100.0, 1000.0), 100.0);  // x > z clamps
  EXPECT_DOUBLE_EQ(Yao(5.0, 1.0, 100.0), 1.0);          // one page
}

TEST(YaoTest, SingleRecordTouchesOnePage) {
  // One random record out of z on y pages touches exactly one page:
  // Y(1,y,z) = y·(1 − (z − z/y)/z) = y·(z/y)/z = 1.
  EXPECT_NEAR(Yao(1.0, 50.0, 500.0), 1.0, 1e-9);
  EXPECT_NEAR(Yao(1.0, 222223.0, 1111111.0), 1.0, 1e-6);
}

TEST(YaoTest, NeverExceedsMinOfXAndY) {
  for (double x : {1.0, 3.0, 10.0, 50.0, 400.0}) {
    double y = 100.0;
    double z = 1000.0;
    double result = Yao(x, y, z);
    EXPECT_LE(result, x);
    EXPECT_LE(result, y);
    EXPECT_GE(result, 0.0);
  }
}

TEST(YaoTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 1.0; x <= 500.0; x += 7.0) {
    double cur = Yao(x, 100.0, 1000.0);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(YaoTest, ApproachesAllPagesForLargeX) {
  // Retrieving half the records of a densely packed file touches almost
  // every page (10 records per page).
  EXPECT_GT(Yao(500.0, 100.0, 1000.0), 99.0);
}

TEST(YaoTest, SparseFileDegeneratesToOnePagePerRecord) {
  // ~1 record per page: x records touch about x pages.
  EXPECT_NEAR(Yao(10.0, 1000.0, 1000.0), 10.0, 0.1);
}

TEST(YaoTest, MatchesHandComputedSmallCase) {
  // z=4 records on y=2 pages (2 per page), x=2:
  // product terms (z − z/y − i + 1)/(z − i + 1): i=1 → 2/4, i=2 → 1/3;
  // Y = 2·(1 − 1/6) = 5/3 — the combinatorial expectation (the second
  // record shares the first record's page with probability 1/3).
  EXPECT_NEAR(Yao(2.0, 2.0, 4.0), 5.0 / 3.0, 1e-12);
}

TEST(YaoTest, IntegerOverloadAgrees) {
  EXPECT_DOUBLE_EQ(Yao(int64_t{7}, int64_t{10}, int64_t{100}),
                   Yao(7.0, 10.0, 100.0));
}

}  // namespace
}  // namespace spatialjoin
