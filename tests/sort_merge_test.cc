#include <gtest/gtest.h>

#include <set>

#include "core/nested_loop.h"
#include "core/sort_merge_zorder.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

class SortMergeTest : public ::testing::Test {
 protected:
  SortMergeTest()
      : disk_(2000),
        pool_(&disk_, 1024),
        world_(0, 0, 1000, 1000),
        grid_(world_) {}

  std::unique_ptr<Relation> MakeRects(const std::string& name, int count,
                                      double min_ext, double max_ext,
                                      uint64_t seed) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    auto rel = std::make_unique<Relation>(name, schema, &pool_);
    RectGenerator gen(world_, seed);
    for (int64_t i = 0; i < count; ++i) {
      rel->Insert(Tuple({Value(i), Value(gen.NextRect(min_ext, max_ext))}));
    }
    return rel;
  }

  DiskManager disk_;
  BufferPool pool_;
  Rectangle world_;
  ZGrid grid_;
};

TEST_F(SortMergeTest, MatchesNestedLoopForOverlaps) {
  auto r = MakeRects("r", 300, 2, 40, 101);
  auto s = MakeRects("s", 300, 2, 40, 202);
  OverlapsOp op;
  ZOrderJoinStats stats;
  JoinResult zorder =
      SortMergeZOrderJoin(*r, 1, *s, 1, op, grid_, {}, &stats);
  JoinResult ground_truth = NestedLoopJoin(*r, 1, *s, 1, op);
  EXPECT_EQ(AsSet(zorder), AsSet(ground_truth));
  EXPECT_FALSE(zorder.matches.empty());
  EXPECT_GT(stats.z_cells_r, 0);
  EXPECT_GT(stats.z_cells_s, 0);
}

TEST_F(SortMergeTest, ReportsDuplicateSuppression) {
  // Large objects decompose into many cells and share several of them —
  // the paper's "any overlap is likely to be reported more than once".
  auto r = MakeRects("r", 60, 100, 300, 303);
  auto s = MakeRects("s", 60, 100, 300, 404);
  OverlapsOp op;
  ZOrderJoinStats stats;
  JoinResult zorder =
      SortMergeZOrderJoin(*r, 1, *s, 1, op, grid_, {}, &stats);
  JoinResult ground_truth = NestedLoopJoin(*r, 1, *s, 1, op);
  EXPECT_EQ(AsSet(zorder), AsSet(ground_truth));
  EXPECT_GT(stats.duplicates_suppressed, 0);
  EXPECT_GE(stats.candidate_pairs,
            static_cast<int64_t>(zorder.matches.size()));
}

TEST_F(SortMergeTest, FinerDecompositionFiltersMoreCandidates) {
  auto r = MakeRects("r", 150, 5, 60, 505);
  auto s = MakeRects("s", 150, 5, 60, 606);
  OverlapsOp op;
  ZDecomposeOptions coarse;
  coarse.max_level = 2;
  coarse.max_cells = 4;
  ZDecomposeOptions fine;
  fine.max_level = 10;
  fine.max_cells = 24;
  ZOrderJoinStats coarse_stats;
  ZOrderJoinStats fine_stats;
  JoinResult coarse_result =
      SortMergeZOrderJoin(*r, 1, *s, 1, op, grid_, coarse, &coarse_stats);
  JoinResult fine_result =
      SortMergeZOrderJoin(*r, 1, *s, 1, op, grid_, fine, &fine_stats);
  // Same answers, fewer θ verifications with the finer decomposition.
  EXPECT_EQ(AsSet(coarse_result), AsSet(fine_result));
  EXPECT_LT(fine_result.theta_tests, coarse_result.theta_tests);
}

TEST_F(SortMergeTest, WorksForContainmentOperators) {
  // `includes` matches always overlap, so the z-order candidates are a
  // superset and the θ filter keeps the semantics exact.
  auto r = MakeRects("r", 120, 50, 200, 707);
  auto s = MakeRects("s", 200, 2, 20, 808);
  IncludesOp op;
  JoinResult zorder = SortMergeZOrderJoin(*r, 1, *s, 1, op, grid_);
  JoinResult ground_truth = NestedLoopJoin(*r, 1, *s, 1, op);
  EXPECT_EQ(AsSet(zorder), AsSet(ground_truth));
  EXPECT_FALSE(zorder.matches.empty());
}

TEST_F(SortMergeTest, EmptyRelations) {
  auto r = MakeRects("r", 0, 1, 2, 1);
  auto s = MakeRects("s", 10, 1, 2, 2);
  OverlapsOp op;
  JoinResult result = SortMergeZOrderJoin(*r, 1, *s, 1, op, grid_);
  EXPECT_TRUE(result.matches.empty());
}

}  // namespace
}  // namespace spatialjoin
