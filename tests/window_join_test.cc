#include <gtest/gtest.h>

#include <set>

#include "core/naive_sort_merge.h"
#include "core/nested_loop.h"
#include "core/window_join.h"
#include "gridfile/grid_file.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

class WindowJoinTest : public ::testing::Test {
 protected:
  WindowJoinTest() : disk_(2000), pool_(&disk_, 1024), world_(0, 0, 800, 800) {}

  std::unique_ptr<Relation> MakeRects(const std::string& name, int count,
                                      uint64_t seed) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    auto rel = std::make_unique<Relation>(name, schema, &pool_);
    RectGenerator gen(world_, seed);
    for (int64_t i = 0; i < count; ++i) {
      rel->Insert(Tuple({Value(i), Value(gen.NextRect(2, 30))}));
    }
    return rel;
  }

  std::unique_ptr<Relation> MakePoints(const std::string& name, int count,
                                       uint64_t seed) {
    Schema schema({{"id", ValueType::kInt64},
                   {"site", ValueType::kPoint}});
    auto rel = std::make_unique<Relation>(name, schema, &pool_);
    RectGenerator gen(world_, seed);
    for (int64_t i = 0; i < count; ++i) {
      rel->Insert(Tuple({Value(i), Value(gen.NextPoint())}));
    }
    return rel;
  }

  DiskManager disk_;
  BufferPool pool_;
  Rectangle world_;
};

TEST_F(WindowJoinTest, ProbeWindowsAreConservative) {
  // Θ(a, b) must imply MBR(a) overlaps ProbeWindow(b).
  RectGenerator gen(world_, 31);
  WithinDistanceOp within(20.0);
  OverlapsOp overlaps;
  NorthwestOfOp northwest;
  ReachableWithinOp reachable(4.0, 3.0);
  const ThetaOperator* ops[] = {&within, &overlaps, &northwest, &reachable};
  for (const ThetaOperator* op : ops) {
    for (int t = 0; t < 2000; ++t) {
      Rectangle a = gen.NextRect(1, 40);
      Rectangle b = gen.NextRect(1, 40);
      if (!op->ThetaUpper(a, b)) continue;
      auto window = op->ProbeWindow(b, world_);
      ASSERT_TRUE(window.has_value()) << op->name();
      EXPECT_TRUE(a.Overlaps(*window))
          << op->name() << " a=" << a.ToString() << " b=" << b.ToString();
    }
  }
}

TEST_F(WindowJoinTest, RTreeWindowJoinMatchesGroundTruth) {
  auto r = MakeRects("r", 300, 1);
  auto s = MakeRects("s", 300, 2);
  RTree index(&pool_, RTreeSplit::kQuadratic, 8);
  r->Scan([&](TupleId tid, const Tuple& t) {
    index.Insert(t.value(1).Mbr(), tid);
  });
  WithinDistanceOp within(15.0);
  OverlapsOp overlaps;
  NorthwestOfOp northwest;
  const ThetaOperator* ops[] = {&within, &overlaps, &northwest};
  for (const ThetaOperator* op : ops) {
    JoinResult window_join =
        RTreeWindowJoin(index, *r, 1, *s, 1, *op, world_);
    JoinResult truth = NestedLoopJoin(*r, 1, *s, 1, *op);
    EXPECT_EQ(AsSet(window_join), AsSet(truth)) << op->name();
  }
}

TEST_F(WindowJoinTest, GridFileWindowJoinMatchesGroundTruth) {
  auto r = MakePoints("r", 500, 3);
  auto s = MakeRects("s", 200, 4);
  GridFile index(&pool_, world_, 8);
  r->Scan([&](TupleId tid, const Tuple& t) {
    index.Insert(t.value(1).AsPoint(), tid);
  });
  WithinDistanceOp within(25.0);
  OverlapsOp overlaps;  // point-in-rectangle
  const ThetaOperator* ops[] = {&within, &overlaps};
  for (const ThetaOperator* op : ops) {
    JoinResult window_join = GridFileWindowJoin(index, *r, 1, *s, 1, *op);
    JoinResult truth = NestedLoopJoin(*r, 1, *s, 1, *op);
    EXPECT_EQ(AsSet(window_join), AsSet(truth)) << op->name();
  }
}

TEST_F(WindowJoinTest, WindowJoinPrunesThetaWork) {
  auto r = MakeRects("r", 400, 5);
  auto s = MakeRects("s", 400, 6);
  RTree index(&pool_, RTreeSplit::kQuadratic, 8);
  r->Scan([&](TupleId tid, const Tuple& t) {
    index.Insert(t.value(1).Mbr(), tid);
  });
  OverlapsOp op;
  JoinResult window_join = RTreeWindowJoin(index, *r, 1, *s, 1, op, world_);
  JoinResult truth = NestedLoopJoin(*r, 1, *s, 1, op);
  EXPECT_EQ(AsSet(window_join), AsSet(truth));
  EXPECT_LT(window_join.theta_tests, truth.theta_tests / 10);
}

// The paper's §2.2 negative result, demonstrated: a classical sort-merge
// along a space-filling curve misses matches for proximity operators no
// matter how it is tuned, while the paper's strategies are exact.
TEST_F(WindowJoinTest, NaiveSortMergeIsIncomplete) {
  auto r = MakeRects("r", 400, 7);
  auto s = MakeRects("s", 400, 8);
  ZGrid grid(world_);
  OverlapsOp op;
  JoinResult truth = NestedLoopJoin(*r, 1, *s, 1, op);
  ASSERT_GT(truth.matches.size(), 20u);

  JoinResult narrow =
      NaiveCentroidSortMergeJoin(*r, 1, *s, 1, op, grid, /*band=*/8);
  JoinResult wide =
      NaiveCentroidSortMergeJoin(*r, 1, *s, 1, op, grid, /*band=*/64);
  JoinResult hilbert = NaiveCentroidSortMergeJoin(
      *r, 1, *s, 1, op, grid, /*band=*/64, SortCurve::kHilbert);

  // Everything found is a real match (the θ filter is exact)…
  MatchSet truth_set = AsSet(truth);
  for (const auto& m : narrow.matches) EXPECT_TRUE(truth_set.count(m));
  // …but matches are missed, and widening the band only mitigates, never
  // fixes (the paper: "one can always find two objects … spatially close
  // but far apart from each other in the Peano sequence").
  EXPECT_LT(AsSet(narrow).size(), truth_set.size());
  EXPECT_LT(AsSet(wide).size(), truth_set.size());
  EXPECT_GE(AsSet(wide).size(), AsSet(narrow).size());
  // Hilbert's better locality does not rescue the approach: still
  // incomplete (the impossibility is order-agnostic, paper §2.2).
  for (const auto& m : hilbert.matches) EXPECT_TRUE(truth_set.count(m));
  EXPECT_LT(AsSet(hilbert).size(), truth_set.size());
}

TEST_F(WindowJoinTest, NaiveSortMergeMissesAdjacentZDiscontinuity) {
  // A hand-built Fig.-1-style pair: two touching rectangles straddling
  // the main z-order discontinuity (the vertical midline). Their
  // centroids are maximally separated in z, so a band-1 merge misses
  // them even though they overlap.
  Schema schema({{"id", ValueType::kInt64},
                 {"box", ValueType::kRectangle}});
  Relation r("r", schema, &pool_);
  Relation s("s", schema, &pool_);
  double mid = 400.0;  // world is 800x800
  // r0 sits in the upper-LEFT quadrant touching the midline, s0 in the
  // upper-RIGHT: they overlap on the shared edge, but every upper-right
  // z-value exceeds every upper-left one, so any S objects in the
  // upper-right quadrant with lower local z than s0 wedge themselves
  // between the pair in the sorted sequence.
  r.Insert(Tuple({Value(int64_t{0}),
                  Value(Rectangle(mid - 10, 790, mid, 800))}));
  s.Insert(Tuple({Value(int64_t{0}),
                  Value(Rectangle(mid, 790, mid + 10, 800))}));
  for (int64_t i = 1; i <= 40; ++i) {
    // Low-y upper-right fillers: z(filler) < z(s0) but > z(r0).
    double y = 410.0 + 8.0 * static_cast<double>(i);
    s.Insert(Tuple({Value(i), Value(Rectangle(401, y, 404, y + 3))}));
  }
  ZGrid grid(world_);
  OverlapsOp op;
  JoinResult truth = NestedLoopJoin(r, 1, s, 1, op);
  MatchSet truth_set = AsSet(truth);
  ASSERT_TRUE(truth_set.count({0, 0}));  // the straddling pair overlaps
  JoinResult naive =
      NaiveCentroidSortMergeJoin(r, 1, s, 1, op, grid, /*band=*/1);
  EXPECT_FALSE(AsSet(naive).count({0, 0}))
      << "the z-discontinuity pair should be missed by a narrow band";
}

}  // namespace
}  // namespace spatialjoin
