#include "common/check.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

#include "common/status.h"

namespace spatialjoin {
namespace {

// --- Passing conditions are silent and evaluate their operands once. ---

TEST(CheckTest, PassingChecksDoNotAbort) {
  int evaluations = 0;
  SJ_CHECK(++evaluations == 1);
  EXPECT_EQ(evaluations, 1);
  SJ_CHECK_MSG(true, "never rendered " << evaluations);
  SJ_CHECK_EQ(2 + 2, 4);
  SJ_CHECK_NE(1, 2);
  SJ_CHECK_LT(1, 2);
  SJ_CHECK_LE(2, 2);
  SJ_CHECK_GT(3, 2);
  SJ_CHECK_GE(3, 3);
  SJ_CHECK_OK(Status::Ok());
}

// --- Failing conditions abort with file, line, and expression text. ---

TEST(CheckDeathTest, FailureNamesExpressionAndFile) {
  EXPECT_DEATH(SJ_CHECK(1 == 2),
               "SJ_CHECK failed at .*check_test\\.cc:[0-9]+: 1 == 2");
}

TEST(CheckDeathTest, MessageIsStreamedIntoDiagnostic) {
  EXPECT_DEATH(SJ_CHECK_MSG(false, "ctx=" << 7 << "/" << "x"),
               "SJ_CHECK failed at .*: false — ctx=7/x");
}

TEST(CheckDeathTest, CheckOkRendersTheStatus) {
  EXPECT_DEATH(SJ_CHECK_OK(Status::InvalidArgument("bad theta")),
               "non-OK status: .*bad theta");
}

// --- Failure observer (the flight recorder's crash hook). ---

std::atomic<int> observer_calls{0};

void RecordingObserver(const char* file, int line, const char* expr,
                       const char* message) {
  // The marker is matched by the death-test regex; the child process's
  // stderr is the only channel back to the parent.
  std::fprintf(stderr, "OBSERVED[%d] %s at %s:%d msg=%s;",
               observer_calls.fetch_add(1), expr, file, line, message);
  std::fflush(stderr);
}

void RecursingObserver(const char* file, int line, const char* expr,
                       const char* message) {
  (void)file;
  (void)line;
  (void)expr;
  (void)message;
  std::fprintf(stderr, "OBS%d;", observer_calls.fetch_add(1));
  std::fflush(stderr);
  // Relies on CheckFailed's re-entry guard: if it were missing, this
  // would recurse forever and the death regex below would not match.
  SJ_CHECK_MSG(false, "nested");
}

TEST(CheckDeathTest, ObserverRunsBeforeAbortWithFailureDetails) {
  // The death statement runs in a forked child, so installing the
  // observer there leaves the parent's (null) observer untouched.
  EXPECT_DEATH(
      {
        internal_check::SetCheckFailureObserver(&RecordingObserver);
        SJ_CHECK_MSG(false, "dump me");
      },
      "OBSERVED\\[0\\] false at .*check_test\\.cc:[0-9]+ msg=dump me;"
      ".*SJ_CHECK failed");
}

TEST(CheckDeathTest, ObserverIsNotReenteredWhenItFailsACheckItself) {
  // A check failure inside the observer must not recurse into it: the
  // guard in CheckFailed skips the second invocation, so stderr shows
  // OBS0; immediately followed by the nested diagnostic — never OBS1.
  EXPECT_DEATH(
      {
        internal_check::SetCheckFailureObserver(&RecursingObserver);
        SJ_CHECK(false);
      },
      "OBS0;SJ_CHECK failed at .*: false — nested");
}

TEST(CheckDeathTest, ClearingObserverRestoresPlainAbort) {
  EXPECT_DEATH(
      {
        internal_check::SetCheckFailureObserver(&RecordingObserver);
        internal_check::SetCheckFailureObserver(nullptr);
        SJ_CHECK(false);
      },
      "SJ_CHECK failed at .*check_test\\.cc:[0-9]+: false");
}

}  // namespace
}  // namespace spatialjoin
