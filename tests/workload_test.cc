#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"
#include "workload/scenario_houses_lakes.h"

namespace spatialjoin {
namespace {

TEST(RectGeneratorTest, RectsStayInWorld) {
  Rectangle world(0, 0, 100, 50);
  RectGenerator gen(world, 1);
  for (int i = 0; i < 500; ++i) {
    Rectangle r = gen.NextRect(0.5, 10);
    EXPECT_TRUE(world.Contains(r)) << r.ToString();
    EXPECT_GE(r.width(), 0.0);
    EXPECT_LE(r.width(), 10.0);
  }
}

TEST(RectGeneratorTest, PointsStayInWorld) {
  Rectangle world(-10, -10, 10, 10);
  RectGenerator gen(world, 2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(world.ContainsPoint(gen.NextPoint()));
  }
}

TEST(RectGeneratorTest, PolygonsAreSimpleAndInWorld) {
  Rectangle world(0, 0, 100, 100);
  RectGenerator gen(world, 3);
  for (int i = 0; i < 100; ++i) {
    Polygon poly = gen.NextPolygon(1, 5, 9);
    EXPECT_EQ(poly.size(), 9u);
    EXPECT_TRUE(world.Contains(poly.BoundingBox()));
    EXPECT_GT(poly.Area(), 0.0);
    // Jittered radial n-gons keep angular order: the centroid stays
    // inside, a quick simplicity proxy.
    EXPECT_TRUE(poly.ContainsPoint(poly.Centroid()));
  }
}

TEST(RectGeneratorTest, DeterministicPerSeed) {
  Rectangle world(0, 0, 10, 10);
  RectGenerator a(world, 42);
  RectGenerator b(world, 42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextRect(1, 3), b.NextRect(1, 3));
  }
}

TEST(RectGeneratorTest, ClusteredPointsRespectWorld) {
  Rectangle world(0, 0, 100, 100);
  RectGenerator gen(world, 5);
  std::vector<Point> points = gen.ClusteredPoints(300, 4, 5.0);
  EXPECT_EQ(points.size(), 300u);
  for (const Point& p : points) EXPECT_TRUE(world.ContainsPoint(p));
}

TEST(HousesLakesTest, SchemasMatchPaper) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 1024);
  HousesLakesOptions options;
  options.num_houses = 200;
  options.num_lakes = 10;
  HousesLakesScenario scenario = GenerateHousesLakes(options, &pool);

  EXPECT_EQ(scenario.houses->schema().ToString(),
            "hid INT64, hprice DOUBLE, hlocation POINT");
  EXPECT_EQ(scenario.lakes->schema().ToString(),
            "lid INT64, name STRING, larea POLYGON");
  EXPECT_EQ(scenario.houses->num_tuples(), 200);
  EXPECT_EQ(scenario.lakes->num_tuples(), 10);

  Rectangle world = HousesLakesWorld(options);
  scenario.houses->Scan([&](TupleId, const Tuple& t) {
    EXPECT_TRUE(world.ContainsPoint(t.value(2).AsPoint()));
    EXPECT_GT(t.value(1).AsDouble(), 0.0);
  });
  scenario.lakes->Scan([&](TupleId, const Tuple& t) {
    EXPECT_TRUE(world.Contains(t.value(2).AsPolygon().BoundingBox()));
  });
}

TEST(HousesLakesTest, HousesClusterNearLakes) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 2048);
  HousesLakesOptions options;
  options.num_houses = 600;
  options.num_lakes = 8;
  HousesLakesScenario scenario = GenerateHousesLakes(options, &pool);

  // Count houses within 10 km of some lake: with 2/3 of the houses
  // placed lakeside, a clear majority must be close to a lake.
  std::vector<Polygon> lakes;
  scenario.lakes->Scan([&](TupleId, const Tuple& t) {
    lakes.push_back(t.value(2).AsPolygon());
  });
  int close = 0;
  scenario.houses->Scan([&](TupleId, const Tuple& t) {
    Point loc = t.value(2).AsPoint();
    for (const Polygon& lake : lakes) {
      if (lake.DistanceToPoint(loc) <= 10.0) {
        ++close;
        break;
      }
    }
  });
  EXPECT_GT(close, 200);
}

}  // namespace
}  // namespace spatialjoin
