// Scenario tests for the roads-and-towns workload (curve geometry), plus
// an operator × strategy consistency matrix over it: every applicable
// strategy must return the nested-loop answer for every Table-1 operator.
#include <gtest/gtest.h>

#include <set>

#include "core/index_nested_loop.h"
#include "core/join.h"
#include "core/nested_loop.h"
#include "core/theta_ops.h"
#include "quadtree/quadtree.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/scenario_roads_towns.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

class RoadsTownsTest : public ::testing::Test {
 protected:
  RoadsTownsTest() : disk_(2000), pool_(&disk_, 2048) {
    options_.num_roads = 15;
    options_.num_towns = 120;
    scenario_ = GenerateRoadsTowns(options_, &pool_);
  }

  DiskManager disk_;
  BufferPool pool_;
  RoadsTownsOptions options_;
  RoadsTownsScenario scenario_;
};

TEST_F(RoadsTownsTest, SchemasAndBounds) {
  EXPECT_EQ(scenario_.roads->schema().ToString(),
            "rid INT64, name STRING, course POLYLINE");
  EXPECT_EQ(scenario_.towns->schema().ToString(),
            "tid INT64, name STRING, area RECTANGLE");
  EXPECT_EQ(scenario_.roads->num_tuples(), 15);
  EXPECT_EQ(scenario_.towns->num_tuples(), 120);
  Rectangle world = RoadsTownsWorld(options_);
  scenario_.roads->Scan([&](TupleId, const Tuple& t) {
    const Polyline& course = t.value(2).AsPolyline();
    EXPECT_GE(course.size(), 2u);
    EXPECT_TRUE(world.Contains(course.BoundingBox()));
    EXPECT_GT(course.Length(), 0.0);
  });
  scenario_.towns->Scan([&](TupleId, const Tuple& t) {
    EXPECT_TRUE(world.Contains(t.value(2).AsRectangle()));
  });
}

TEST_F(RoadsTownsTest, RoadsideTownsAreNearRoads) {
  // With roadside_fraction = 0.6, a majority of towns must sit within a
  // small buffer of some road.
  std::vector<Polyline> courses;
  scenario_.roads->Scan([&](TupleId, const Tuple& t) {
    courses.push_back(t.value(2).AsPolyline());
  });
  int near = 0;
  scenario_.towns->Scan([&](TupleId, const Tuple& t) {
    Point center = t.value(2).AsRectangle().Center();
    for (const Polyline& road : courses) {
      if (road.DistanceToPoint(center) <= 12.0) {
        ++near;
        break;
      }
    }
  });
  EXPECT_GT(near, 50);
}

TEST_F(RoadsTownsTest, DeterministicPerSeed) {
  DiskManager disk2(2000);
  BufferPool pool2(&disk2, 2048);
  RoadsTownsScenario again = GenerateRoadsTowns(options_, &pool2);
  for (TupleId t = 0; t < scenario_.roads->num_tuples(); ++t) {
    EXPECT_EQ(scenario_.roads->Read(t), again.roads->Read(t));
  }
  for (TupleId t = 0; t < scenario_.towns->num_tuples(); ++t) {
    EXPECT_EQ(scenario_.towns->Read(t), again.towns->Read(t));
  }
}

// Operator × strategy matrix over curve geometry: roads (R) joined with
// towns (S) under four Table-1 operators; tree join on a quadtree×R-tree
// pair and index nested loop must match the nested loop everywhere.
TEST_F(RoadsTownsTest, OperatorStrategyMatrix) {
  Rectangle world = RoadsTownsWorld(options_);
  QuadTree roads_tree(world, 8);
  scenario_.roads->Scan([&](TupleId tid, const Tuple& t) {
    roads_tree.Insert(t.value(2).Mbr(), tid);
  });
  roads_tree.AttachRelation(scenario_.roads.get(), 2);

  DiskManager idx_disk(2000);
  BufferPool idx_pool(&idx_disk, 2048);
  RTree towns_rtree(&idx_pool, RTreeSplit::kRStar, 8);
  scenario_.towns->Scan([&](TupleId tid, const Tuple& t) {
    towns_rtree.Insert(t.value(2).Mbr(), tid);
  });
  RTreeGenTree towns_tree(&towns_rtree, scenario_.towns.get(), 2);

  OverlapsOp overlaps;
  WithinDistanceOp within(20.0);
  ReachableWithinOp reachable(3.0, 2.0);
  NorthwestOfOp northwest;
  const ThetaOperator* ops[] = {&overlaps, &within, &reachable, &northwest};
  for (const ThetaOperator* op : ops) {
    JoinResult truth = NestedLoopJoin(*scenario_.roads, 2,
                                      *scenario_.towns, 2, *op);
    JoinResult tree = TreeJoin(roads_tree, towns_tree, *op);
    EXPECT_EQ(AsSet(tree), AsSet(truth)) << op->name();
    JoinResult probe = IndexNestedLoopJoin(
        roads_tree, *scenario_.towns, 2, *op);
    EXPECT_EQ(AsSet(probe), AsSet(truth)) << op->name();
  }
}

TEST_F(RoadsTownsTest, ReachabilityQueryHasSensibleShape) {
  // "Towns reachable from road 0 in 3 minutes at 2 km/min": widening the
  // time budget can only add towns (monotone operator family).
  Value road0 = scenario_.roads->Read(0).value(2);
  std::set<TupleId> narrow_set, wide_set;
  ReachableWithinOp narrow(2.0, 2.0);
  ReachableWithinOp wide(8.0, 2.0);
  scenario_.towns->Scan([&](TupleId tid, const Tuple& t) {
    if (narrow.Theta(road0, t.value(2))) narrow_set.insert(tid);
    if (wide.Theta(road0, t.value(2))) wide_set.insert(tid);
  });
  for (TupleId tid : narrow_set) EXPECT_TRUE(wide_set.count(tid));
  EXPECT_GE(wide_set.size(), narrow_set.size());
  EXPECT_FALSE(wide_set.empty());
}

}  // namespace
}  // namespace spatialjoin
