#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit_hook.h"
#include "btree/bplus_tree.h"
#include "common/random.h"
#include "geometry/rectangle.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

// Randomized property harness (ISSUE: audit subsystem): drive each index
// through a seeded insert/delete/query sequence against a shadow model,
// with the paranoid audit hook enabled so every mutation is followed by a
// full structural audit. Any invariant the mutation path breaks aborts
// the test at the op that broke it, not at some later symptom.

namespace spatialjoin {
namespace {

class ParanoidAuditScope {
 public:
  ParanoidAuditScope() { audit::SetAuditLevel(audit::AuditLevel::kParanoid); }
  ~ParanoidAuditScope() { audit::SetAuditLevel(audit::AuditLevel::kOff); }
};

// ---------------------------------------------------------------------------
// R-tree: all three split heuristics.
// ---------------------------------------------------------------------------

class RTreePropertyTest : public ::testing::TestWithParam<RTreeSplit> {};

TEST_P(RTreePropertyTest, RandomOpsKeepInvariantsAndMatchShadow) {
  ParanoidAuditScope paranoid;
  DiskManager disk(4000);
  BufferPool pool(&disk, 256);
  RTree tree(&pool, GetParam(), 8);
  Rng rng(2026);
  Rectangle world(0, 0, 1000, 1000);

  std::vector<std::pair<Rectangle, TupleId>> shadow;
  TupleId next_tid = 0;

  auto random_rect = [&]() {
    double x = rng.NextDouble(0, 950);
    double y = rng.NextDouble(0, 950);
    return Rectangle(x, y, x + rng.NextDouble(1, 50),
                     y + rng.NextDouble(1, 50));
  };

  for (int op = 0; op < 250; ++op) {
    uint64_t dice = rng.NextUint64(10);
    if (dice < 6 || shadow.empty()) {
      Rectangle r = random_rect();
      tree.Insert(r, next_tid);
      shadow.emplace_back(r, next_tid);
      ++next_tid;
    } else if (dice < 8) {
      size_t victim = rng.NextUint64(shadow.size());
      ASSERT_TRUE(tree.Delete(shadow[victim].first, shadow[victim].second))
          << "op " << op << ": delete of a live entry failed";
      shadow.erase(shadow.begin() + static_cast<ptrdiff_t>(victim));
    } else {
      Rectangle window = random_rect();
      std::vector<TupleId> got = tree.SearchTids(window);
      std::vector<TupleId> want;
      for (const auto& [r, tid] : shadow) {
        if (r.Overlaps(window)) want.push_back(tid);
      }
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "op " << op << ": search disagrees with shadow";
    }
    audit::MaybeAudit(tree);  // paranoid: full audit after every op
    ASSERT_EQ(tree.num_entries(), static_cast<int64_t>(shadow.size()));
  }

  // The adapter view must satisfy the generalization-tree invariants too.
  RTreeGenTree adapter(&tree, nullptr, 0);
  audit::MaybeAudit(adapter);
}

INSTANTIATE_TEST_SUITE_P(AllSplits, RTreePropertyTest,
                         ::testing::Values(RTreeSplit::kLinear,
                                           RTreeSplit::kQuadratic,
                                           RTreeSplit::kRStar),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case RTreeSplit::kLinear:
                               return "Linear";
                             case RTreeSplit::kQuadratic:
                               return "Quadratic";
                             default:
                               return "RStar";
                           }
                         });

// ---------------------------------------------------------------------------
// B⁺-tree: duplicate-heavy key range so splits cut through equal-key runs.
// ---------------------------------------------------------------------------

TEST(BPlusTreePropertyTest, RandomOpsKeepInvariantsAndMatchShadow) {
  ParanoidAuditScope paranoid;
  DiskManager disk(4000);
  BufferPool pool(&disk, 256);
  BPlusTree tree(&pool, 4, 4);
  Rng rng(77);

  std::multimap<uint64_t, uint64_t> shadow;
  uint64_t next_value = 0;

  for (int op = 0; op < 400; ++op) {
    uint64_t dice = rng.NextUint64(10);
    if (dice < 6 || shadow.empty()) {
      uint64_t key = rng.NextUint64(25);  // tight range → many duplicates
      tree.Insert(key, next_value);
      shadow.emplace(key, next_value);
      ++next_value;
    } else if (dice < 8) {
      size_t victim = rng.NextUint64(shadow.size());
      auto it = shadow.begin();
      std::advance(it, static_cast<ptrdiff_t>(victim));
      ASSERT_TRUE(tree.Delete(it->first, it->second))
          << "op " << op << ": delete of a live entry failed";
      shadow.erase(it);
    } else {
      uint64_t key = rng.NextUint64(25);
      std::vector<uint64_t> got = tree.Lookup(key);
      std::vector<uint64_t> want;
      auto [lo, hi] = shadow.equal_range(key);
      for (auto it = lo; it != hi; ++it) want.push_back(it->second);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "op " << op << ": lookup(" << key
                           << ") disagrees with shadow";
    }
    audit::MaybeAudit(tree);
    ASSERT_EQ(tree.num_entries(), static_cast<int64_t>(shadow.size()));
  }

  // Full ordered scan must equal the shadow, proving the leaf chain covers
  // every entry exactly once in key order.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  tree.ScanAll([&](uint64_t k, uint64_t v) { scanned.emplace_back(k, v); });
  ASSERT_EQ(scanned.size(), shadow.size());
  size_t i = 0;
  uint64_t prev_key = 0;
  for (const auto& [k, v] : scanned) {
    EXPECT_GE(k, prev_key) << "scan out of order at position " << i;
    prev_key = k;
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Heap file: slotted pages under mixed record sizes and deletions.
// ---------------------------------------------------------------------------

TEST(HeapFilePropertyTest, RandomOpsKeepInvariantsAndMatchShadow) {
  ParanoidAuditScope paranoid;
  DiskManager disk(4000);
  BufferPool pool(&disk, 64);
  HeapFile file(&pool);
  Rng rng(99);

  std::map<RecordId, std::string> shadow;

  for (int op = 0; op < 300; ++op) {
    uint64_t dice = rng.NextUint64(10);
    if (dice < 6 || shadow.empty()) {
      size_t len = rng.NextUint64(200) + 1;
      std::string record(len, static_cast<char>('a' + op % 26));
      RecordId rid = file.Insert(record);
      ASSERT_EQ(shadow.count(rid), 0u) << "op " << op << ": rid reused";
      shadow.emplace(rid, std::move(record));
    } else if (dice < 8) {
      size_t victim = rng.NextUint64(shadow.size());
      auto it = shadow.begin();
      std::advance(it, static_cast<ptrdiff_t>(victim));
      ASSERT_TRUE(file.Delete(it->first))
          << "op " << op << ": delete of a live record failed";
      shadow.erase(it);
    } else {
      for (const auto& [rid, want] : shadow) {
        std::string got;
        ASSERT_TRUE(file.Read(rid, &got));
        ASSERT_EQ(got, want);
      }
    }
    audit::MaybeAudit(file);
    audit::MaybeAudit(pool);
    ASSERT_EQ(file.num_records(), static_cast<int64_t>(shadow.size()));
  }

  // Scan must visit exactly the live records.
  std::map<RecordId, std::string> scanned;
  file.Scan([&](const RecordId& rid, std::string_view bytes) {
    scanned.emplace(rid, std::string(bytes));
  });
  ASSERT_EQ(scanned, shadow);
}

}  // namespace
}  // namespace spatialjoin
