// Parameterized correctness sweeps across index tuning knobs: whatever
// the fan-out / node order / bucket capacity, every access method must
// return exactly the brute-force answer and keep its invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/random.h"
#include "gridfile/grid_file.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

// ---------------------------------------------------------------------------
// R-tree fan-out sweep.
// ---------------------------------------------------------------------------

class RTreeFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(RTreeFanoutSweep, SearchExactUnderAnyFanout) {
  int fanout = GetParam();
  DiskManager disk(2000);
  BufferPool pool(&disk, 2048);
  RTree tree(&pool, RTreeSplit::kQuadratic, fanout);
  RectGenerator gen(Rectangle(0, 0, 400, 400), 100 + fanout);
  std::vector<Rectangle> data = gen.Rects(400, 1, 12);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], static_cast<TupleId>(i));
  }
  tree.CheckInvariants();
  for (int q = 0; q < 20; ++q) {
    Rectangle window = gen.NextRect(10, 80);
    std::vector<TupleId> hits = tree.SearchTids(window);
    std::vector<TupleId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i].Overlaps(window)) expected.push_back(static_cast<TupleId>(i));
    }
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, expected) << "fanout " << fanout;
  }
  // Smaller fan-out ⇒ taller tree; sanity bound.
  EXPECT_GE(tree.height(), fanout <= 8 ? 3 : 2);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutSweep,
                         ::testing::Values(4, 6, 8, 16, 32));

// ---------------------------------------------------------------------------
// B⁺-tree order sweep.
// ---------------------------------------------------------------------------

class BTreeOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(BTreeOrderSweep, RangeScansMatchReference) {
  int order = GetParam();
  DiskManager disk(2000);
  BufferPool pool(&disk, 1024);
  BPlusTree tree(&pool, order, order);
  std::multimap<uint64_t, uint64_t> reference;
  Rng rng(200 + static_cast<uint64_t>(order));
  for (int i = 0; i < 1500; ++i) {
    uint64_t key = rng.NextUint64(500);
    uint64_t value = rng.NextUint64();
    tree.Insert(key, value);
    reference.emplace(key, value);
  }
  for (int q = 0; q < 25; ++q) {
    uint64_t lo = rng.NextUint64(500);
    uint64_t hi = lo + rng.NextUint64(100);
    std::vector<std::pair<uint64_t, uint64_t>> scanned;
    tree.ScanRange(lo, hi, [&](uint64_t k, uint64_t v) {
      scanned.emplace_back(k, v);
    });
    std::vector<std::pair<uint64_t, uint64_t>> expected(
        reference.lower_bound(lo), reference.upper_bound(hi));
    std::sort(scanned.begin(), scanned.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(scanned, expected) << "order " << order;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BTreeOrderSweep,
                         ::testing::Values(3, 4, 8, 50, 100));

// ---------------------------------------------------------------------------
// Grid-file bucket-capacity sweep.
// ---------------------------------------------------------------------------

class GridFileCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(GridFileCapacitySweep, SearchExactUnderAnyCapacity) {
  int capacity = GetParam();
  DiskManager disk(512);
  BufferPool pool(&disk, 512);
  GridFile grid(&pool, Rectangle(0, 0, 300, 300), capacity);
  RectGenerator gen(Rectangle(0, 0, 300, 300), 300 + capacity);
  std::vector<Point> data = gen.Points(400);
  for (size_t i = 0; i < data.size(); ++i) {
    grid.Insert(data[i], static_cast<TupleId>(i));
  }
  grid.CheckInvariants();
  for (int q = 0; q < 20; ++q) {
    Rectangle window = gen.NextRect(10, 100);
    std::vector<TupleId> hits = grid.SearchTids(window);
    std::vector<TupleId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (window.ContainsPoint(data[i])) {
        expected.push_back(static_cast<TupleId>(i));
      }
    }
    std::sort(hits.begin(), hits.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hits, expected) << "capacity " << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, GridFileCapacitySweep,
                         ::testing::Values(2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Buffer pool vs a reference LRU simulation.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Memory-pressure stress: the paged structures must stay correct when the
// buffer pool is barely larger than a single page (every access evicts).
// ---------------------------------------------------------------------------

TEST(MemoryPressureStressTest, BTreeCorrectUnderTinyPool) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 2);
  BPlusTree tree(&pool, 8, 8);
  std::multimap<uint64_t, uint64_t> reference;
  Rng rng(888);
  for (int i = 0; i < 800; ++i) {
    uint64_t key = rng.NextUint64(300);
    tree.Insert(key, key * 2);
    reference.emplace(key, key * 2);
  }
  EXPECT_GT(pool.stats().evictions, 100);  // the pool really thrashed
  for (uint64_t key = 0; key < 300; ++key) {
    EXPECT_EQ(tree.Lookup(key).size(), reference.count(key)) << key;
  }
}

TEST(MemoryPressureStressTest, RTreeCorrectUnderTinyPool) {
  DiskManager disk(2000);
  BufferPool pool(&disk, 2);
  RTree tree(&pool, RTreeSplit::kQuadratic, 6);
  RectGenerator gen(Rectangle(0, 0, 200, 200), 999);
  std::vector<Rectangle> data = gen.Rects(250, 1, 10);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], static_cast<TupleId>(i));
  }
  tree.CheckInvariants();
  Rectangle window(50, 50, 120, 120);
  std::vector<TupleId> hits = tree.SearchTids(window);
  std::vector<TupleId> expected;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].Overlaps(window)) expected.push_back(static_cast<TupleId>(i));
  }
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, expected);
}

TEST(BufferPoolReferenceTest, MissCountMatchesIdealLru) {
  const int64_t capacity = 16;
  const int64_t pages = 100;
  DiskManager disk(256);
  std::vector<PageId> ids;
  for (int64_t i = 0; i < pages; ++i) ids.push_back(disk.AllocatePage());
  BufferPool pool(&disk, capacity);

  // Reference LRU on the same access trace.
  std::list<PageId> lru;
  auto reference_access = [&](PageId id) -> bool {  // returns miss
    auto it = std::find(lru.begin(), lru.end(), id);
    if (it != lru.end()) {
      lru.erase(it);
      lru.push_front(id);
      return false;
    }
    if (static_cast<int64_t>(lru.size()) >= capacity) lru.pop_back();
    lru.push_front(id);
    return true;
  };

  Rng rng(77);
  int64_t reference_misses = 0;
  for (int i = 0; i < 5000; ++i) {
    // Skewed trace: 80% of accesses to 20% of pages.
    PageId id = rng.NextBernoulli(0.8)
                    ? ids[static_cast<size_t>(rng.NextUint64(pages / 5))]
                    : ids[static_cast<size_t>(rng.NextUint64(pages))];
    pool.GetPage(id);
    reference_misses += reference_access(id);
  }
  EXPECT_EQ(pool.stats().misses, reference_misses);
  EXPECT_EQ(pool.stats().hits, 5000 - reference_misses);
  // The skew must make the pool effective.
  EXPECT_GT(pool.stats().hit_rate(), 0.5);
}

}  // namespace
}  // namespace spatialjoin
