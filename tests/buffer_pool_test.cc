#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "relational/relation.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace spatialjoin {
namespace {

TEST(DiskManagerTest, AllocateReadWrite) {
  DiskManager disk(256);
  PageId p0 = disk.AllocatePage();
  PageId p1 = disk.AllocatePage();
  EXPECT_EQ(p0, 0);
  EXPECT_EQ(p1, 1);
  Page page(256);
  page.data[0] = 0xAB;
  ASSERT_TRUE(disk.WritePage(p1, page).ok());
  Page read_back;
  ASSERT_TRUE(disk.ReadPage(p1, &read_back).ok());
  EXPECT_EQ(read_back.data[0], 0xAB);
  EXPECT_EQ(disk.stats().page_reads, 1);
  EXPECT_EQ(disk.stats().page_writes, 1);
  EXPECT_EQ(disk.stats().pages_allocated, 2);
}

TEST(BufferPoolTest, HitsAndMisses) {
  DiskManager disk(256);
  PageId pid = disk.AllocatePage();
  BufferPool pool(&disk, 4);
  pool.GetPage(pid);  // miss
  pool.GetPage(pid);  // hit
  pool.GetPage(pid);  // hit
  EXPECT_EQ(pool.stats().misses, 1);
  EXPECT_EQ(pool.stats().hits, 2);
  EXPECT_EQ(disk.stats().page_reads, 1);
}

TEST(BufferPoolTest, LruEviction) {
  DiskManager disk(256);
  PageId pids[4];
  for (auto& pid : pids) pid = disk.AllocatePage();
  BufferPool pool(&disk, 3);
  pool.GetPage(pids[0]);
  pool.GetPage(pids[1]);
  pool.GetPage(pids[2]);
  // Touch 0 so 1 is the LRU victim.
  pool.GetPage(pids[0]);
  pool.GetPage(pids[3]);  // evicts 1
  disk.ResetStats();
  pool.GetPage(pids[0]);  // still cached
  pool.GetPage(pids[2]);  // still cached
  EXPECT_EQ(disk.stats().page_reads, 0);
  pool.GetPage(pids[1]);  // was evicted → re-read
  EXPECT_EQ(disk.stats().page_reads, 1);
}

TEST(BufferPoolTest, DirtyPagesWrittenOnEviction) {
  DiskManager disk(256);
  PageId target = disk.AllocatePage();
  PageId fillers[3];
  for (auto& pid : fillers) pid = disk.AllocatePage();
  BufferPool pool(&disk, 2);
  Page* page = pool.GetMutablePage(target);
  page->data[7] = 0x77;
  // Evict `target` by touching more pages than the capacity.
  for (PageId pid : fillers) pool.GetPage(pid);
  Page verify;
  ASSERT_TRUE(disk.ReadPage(target, &verify).ok());
  EXPECT_EQ(verify.data[7], 0x77);
}

TEST(BufferPoolTest, FlushAllPersistsDirtyPages) {
  DiskManager disk(256);
  PageId pid = disk.AllocatePage();
  BufferPool pool(&disk, 4);
  pool.GetMutablePage(pid)->data[3] = 0x42;
  ASSERT_TRUE(pool.FlushAll().ok());
  Page verify;
  ASSERT_TRUE(disk.ReadPage(pid, &verify).ok());
  EXPECT_EQ(verify.data[3], 0x42);
}

TEST(BufferPoolTest, ClearDropsCache) {
  DiskManager disk(256);
  PageId pid = disk.AllocatePage();
  BufferPool pool(&disk, 4);
  pool.GetPage(pid);
  ASSERT_TRUE(pool.Clear().ok());
  disk.ResetStats();
  pool.GetPage(pid);
  EXPECT_EQ(disk.stats().page_reads, 1);  // cold again
}

// Pins the documented semantics (buffer_pool.h): Clear() drops frames
// without counting them as evictions — `evictions` measures capacity
// pressure only — so Clear() and ResetStats() commute.
TEST(BufferPoolTest, ClearDoesNotCountEvictions) {
  DiskManager disk(256);
  PageId pids[3];
  for (auto& pid : pids) pid = disk.AllocatePage();
  BufferPool pool(&disk, 4);
  for (PageId pid : pids) pool.GetPage(pid);
  EXPECT_EQ(pool.stats().evictions, 0);
  ASSERT_TRUE(pool.Clear().ok());  // drops 3 resident frames
  EXPECT_EQ(pool.stats().evictions, 0);
  // Capacity pressure, by contrast, does count.
  BufferPool tiny(&disk, 1);
  tiny.GetPage(pids[0]);
  tiny.GetPage(pids[1]);  // evicts pids[0]
  EXPECT_EQ(tiny.stats().evictions, 1);
}

TEST(BufferPoolTest, ClearAndResetStatsCommute) {
  DiskManager disk(256);
  PageId pid = disk.AllocatePage();

  // Order A: Clear() then ResetStats().
  BufferPool a(&disk, 4);
  a.GetPage(pid);
  ASSERT_TRUE(a.Clear().ok());
  a.ResetStats();
  // Order B: ResetStats() then Clear().
  BufferPool b(&disk, 4);
  b.GetPage(pid);
  b.ResetStats();
  ASSERT_TRUE(b.Clear().ok());

  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.stats().evictions, 0);
  // Both pools are cold and zeroed: the next access is one fresh miss.
  a.GetPage(pid);
  b.GetPage(pid);
  EXPECT_EQ(a.stats().misses, 1);
  EXPECT_EQ(b.stats().misses, 1);
}

TEST(BufferPoolTest, NewPageIsCachedAndDirty) {
  DiskManager disk(256);
  BufferPool pool(&disk, 4);
  PageId pid = pool.NewPage();
  disk.ResetStats();
  Page* page = pool.GetMutablePage(pid);
  page->data[0] = 1;
  EXPECT_EQ(disk.stats().page_reads, 0);  // no fault needed
  ASSERT_TRUE(pool.FlushAll().ok());
  Page verify;
  ASSERT_TRUE(disk.ReadPage(pid, &verify).ok());
  EXPECT_EQ(verify.data[0], 1);
}

TEST(DiskSnapshotTest, RoundTripPreservesPages) {
  DiskManager disk(512);
  for (int i = 0; i < 20; ++i) {
    PageId pid = disk.AllocatePage();
    Page page(512);
    for (size_t b = 0; b < page.size(); ++b) {
      page.data[b] = static_cast<uint8_t>((i * 37 + b) % 251);
    }
    ASSERT_TRUE(disk.WritePage(pid, page).ok());
  }
  const std::string path = "/tmp/sj_snapshot_test.bin";
  ASSERT_TRUE(disk.SaveSnapshot(path).ok());

  // Trash the live disk, then restore.
  Page zero(512);
  for (PageId pid = 0; pid < disk.num_pages(); ++pid) {
    ASSERT_TRUE(disk.WritePage(pid, zero).ok());
  }
  ASSERT_TRUE(disk.LoadSnapshot(path).ok());
  EXPECT_EQ(disk.num_pages(), 20);
  for (int i = 0; i < 20; ++i) {
    Page page;
    ASSERT_TRUE(disk.ReadPage(i, &page).ok());
    for (size_t b = 0; b < page.size(); ++b) {
      ASSERT_EQ(page.data[b], static_cast<uint8_t>((i * 37 + b) % 251))
          << "page " << i << " byte " << b;
    }
  }
  std::remove(path.c_str());
}

TEST(DiskSnapshotTest, RejectsMismatchedPageSize) {
  DiskManager small(512);
  small.AllocatePage();
  const std::string path = "/tmp/sj_snapshot_mismatch.bin";
  ASSERT_TRUE(small.SaveSnapshot(path).ok());
  DiskManager large(2000);
  Status status = large.LoadSnapshot(path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(DiskSnapshotTest, RejectsMissingOrCorruptFile) {
  DiskManager disk(512);
  EXPECT_EQ(disk.LoadSnapshot("/tmp/sj_does_not_exist.bin").code(),
            StatusCode::kNotFound);
  const std::string path = "/tmp/sj_snapshot_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a snapshot";
  }
  EXPECT_EQ(disk.LoadSnapshot(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DiskSnapshotTest, RelationSurvivesSnapshotAndRestore) {
  // End-to-end: a buffer-pooled relation's pages persist byte-exactly.
  DiskManager disk(2000);
  const std::string path = "/tmp/sj_snapshot_relation.bin";
  {
    BufferPool pool(&disk, 64);
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    Relation rel("r", schema, &pool, RelationLayout::kClustered);
    for (int64_t i = 0; i < 40; ++i) {
      double x = static_cast<double>(i);
      rel.Insert(Tuple({Value(i), Value(Rectangle(x, 0, x + 1.0, 1))}));
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(disk.SaveSnapshot(path).ok());
    // Corrupt everything on "disk".
    Page zero(2000);
    for (PageId pid = 0; pid < disk.num_pages(); ++pid) {
      ASSERT_TRUE(disk.WritePage(pid, zero).ok());
    }
    ASSERT_TRUE(disk.LoadSnapshot(path).ok());
    // The relation's in-memory directory still points at the right
    // pages; reads see the restored bytes.
    BufferPool fresh_pool(&disk, 64);
    // (Relation holds the original pool; re-read through it after
    // clearing so nothing stale is cached.)
    ASSERT_TRUE(pool.Clear().ok());
    for (int64_t i = 0; i < 40; ++i) {
      Tuple t = rel.Read(i);
      EXPECT_EQ(t.value(0).AsInt64(), i);
      double x = static_cast<double>(i);
      EXPECT_EQ(t.value(1).AsRectangle(), Rectangle(x, 0, x + 1.0, 1));
    }
  }
  std::remove(path.c_str());
}

TEST(DiskManagerTest, ReadWriteOutOfRangeReturnStatus) {
  DiskManager disk(256);
  disk.AllocatePage();
  Page page(256);
  EXPECT_EQ(disk.WritePage(7, page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.WritePage(-1, page).code(), StatusCode::kOutOfRange);
  Page out;
  EXPECT_EQ(disk.ReadPage(7, &out).code(), StatusCode::kOutOfRange);
  // A wrong-sized buffer is rejected before touching the page.
  Page small(128);
  EXPECT_EQ(disk.WritePage(0, small).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.stats().page_writes, 0);
  EXPECT_EQ(disk.stats().page_reads, 0);
}

// The bug class this PR's [[nodiscard]] sweep closes: a failed write-back
// during FlushAll used to vanish (WritePage returned void). Now the
// status propagates, the page stays dirty, and a retry completes the
// flush once the device recovers.
TEST(BufferPoolTest, FlushAllSurfacesWriteFailureAndKeepsPageDirty) {
  DiskManager disk(256);
  PageId pid = disk.AllocatePage();
  BufferPool pool(&disk, 4);
  pool.GetMutablePage(pid)->data[0] = 0x5A;
  disk.FailNextWrites(1);
  Status status = pool.FlushAll();
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
  // Still dirty: the flush must be retryable, not silently "done".
  auto frames = pool.ResidentFrames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].dirty);
  // Device recovered: retry persists the page.
  ASSERT_TRUE(pool.FlushAll().ok());
  Page verify;
  ASSERT_TRUE(disk.ReadPage(pid, &verify).ok());
  EXPECT_EQ(verify.data[0], 0x5A);
}

TEST(BufferPoolTest, ClearKeepsFramesWhenFlushFails) {
  DiskManager disk(256);
  PageId pid = disk.AllocatePage();
  BufferPool pool(&disk, 4);
  pool.GetMutablePage(pid)->data[0] = 0x77;
  disk.FailNextWrites(1);
  EXPECT_FALSE(pool.Clear().ok());
  // Nothing was dropped: the dirty frame held the only copy.
  ASSERT_EQ(pool.ResidentFrames().size(), 1u);
  ASSERT_TRUE(pool.Clear().ok());
  EXPECT_TRUE(pool.ResidentFrames().empty());
  Page verify;
  ASSERT_TRUE(disk.ReadPage(pid, &verify).ok());
  EXPECT_EQ(verify.data[0], 0x77);
}

// One failed page must not pin the rest of a flush sweep: the sweep
// continues, reports the first error, and only the failed page remains
// dirty.
TEST(BufferPoolTest, FlushAllContinuesPastFailedPage) {
  DiskManager disk(256);
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  BufferPool pool(&disk, 4);
  pool.GetMutablePage(a)->data[0] = 0x01;
  pool.GetMutablePage(b)->data[0] = 0x02;
  disk.FailNextWrites(1);
  EXPECT_FALSE(pool.FlushAll().ok());
  int dirty = 0;
  for (const auto& frame : pool.ResidentFrames()) dirty += frame.dirty;
  EXPECT_EQ(dirty, 1);  // exactly the failed page survived dirty
  ASSERT_TRUE(pool.FlushAll().ok());
}

TEST(IoStatsTest, Difference) {
  IoStats a{10, 5, 3};
  IoStats b{4, 2, 1};
  IoStats diff = a - b;
  EXPECT_EQ(diff.page_reads, 6);
  EXPECT_EQ(diff.page_writes, 3);
  EXPECT_EQ(diff.pages_allocated, 2);
  EXPECT_EQ(diff.total_io(), 9);
}

}  // namespace
}  // namespace spatialjoin
