#include <gtest/gtest.h>

#include "core/histogram.h"
#include "core/planner.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

class HistogramTest : public ::testing::Test {
 protected:
  HistogramTest() : disk_(2000), pool_(&disk_, 512), world_(0, 0, 100, 100) {}

  std::unique_ptr<Relation> MakeRects(int count, double min_ext,
                                      double max_ext, uint64_t seed) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    auto rel = std::make_unique<Relation>("rel", schema, &pool_);
    RectGenerator gen(world_, seed);
    for (int64_t i = 0; i < count; ++i) {
      rel->Insert(Tuple({Value(i), Value(gen.NextRect(min_ext, max_ext))}));
    }
    return rel;
  }

  DiskManager disk_;
  BufferPool pool_;
  Rectangle world_;
};

TEST_F(HistogramTest, CountsCellsTouched) {
  GridHistogram histogram(world_, 10);  // 10x10 cells of 10x10
  histogram.Add(Rectangle(1, 1, 4, 4));      // one cell
  histogram.Add(Rectangle(5, 5, 15, 15));    // 2x2 cells
  histogram.Add(Rectangle(95, 95, 99, 99));  // corner cell
  EXPECT_EQ(histogram.num_objects(), 3);
  EXPECT_EQ(histogram.CellCount(0, 0), 2);  // both small objects touch it
  EXPECT_EQ(histogram.CellCount(1, 1), 1);
  EXPECT_EQ(histogram.CellCount(1, 0), 1);
  EXPECT_EQ(histogram.CellCount(9, 9), 1);
  EXPECT_EQ(histogram.CellCount(5, 5), 0);
}

TEST_F(HistogramTest, BoundaryObjectsClampIntoGrid) {
  GridHistogram histogram(world_, 4);
  histogram.Add(Rectangle(0, 0, 100, 100));  // covers everything
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      EXPECT_EQ(histogram.CellCount(x, y), 1);
    }
  }
}

TEST_F(HistogramTest, SelectivityEstimateBracketsSampledTruth) {
  auto r = MakeRects(400, 2, 10, 1);
  auto s = MakeRects(400, 2, 10, 2);
  GridHistogram hr = GridHistogram::Build(*r, 1, world_, 32);
  GridHistogram hs = GridHistogram::Build(*s, 1, world_, 32);
  double estimated = GridHistogram::EstimateOverlapSelectivity(hr, hs);

  OverlapsOp op;
  JoinStatistics sampled =
      EstimateJoinStatistics(*r, 1, *s, 1, op, 4000, 7);
  // Touching a common cell is necessary for overlap → upper bound…
  EXPECT_GE(estimated, sampled.selectivity * 0.8);
  // …and at 32x32 resolution not a wild one.
  EXPECT_LE(estimated, sampled.selectivity * 8.0 + 0.01);
  EXPECT_GT(estimated, 0.0);
}

TEST_F(HistogramTest, EstimateTracksObjectSize) {
  auto small = MakeRects(300, 1, 4, 3);
  auto large = MakeRects(300, 20, 40, 4);
  GridHistogram h_small = GridHistogram::Build(*small, 1, world_, 25);
  GridHistogram h_large = GridHistogram::Build(*large, 1, world_, 25);
  double p_small =
      GridHistogram::EstimateOverlapSelectivity(h_small, h_small);
  double p_large =
      GridHistogram::EstimateOverlapSelectivity(h_large, h_large);
  EXPECT_LT(p_small, p_large);
}

TEST_F(HistogramTest, EmptyRelationGivesZero) {
  auto r = MakeRects(100, 2, 10, 5);
  GridHistogram hr = GridHistogram::Build(*r, 1, world_, 16);
  GridHistogram empty(world_, 16);
  EXPECT_DOUBLE_EQ(GridHistogram::EstimateOverlapSelectivity(hr, empty),
                   0.0);
}

TEST_F(HistogramTest, FeedsThePlanner) {
  auto r = MakeRects(500, 2, 8, 8);
  auto s = MakeRects(500, 2, 8, 9);
  GridHistogram hr = GridHistogram::Build(*r, 1, world_, 32);
  GridHistogram hs = GridHistogram::Build(*s, 1, world_, 32);
  JoinStatistics stats;
  stats.r_tuples = r->num_tuples();
  stats.s_tuples = s->num_tuples();
  stats.selectivity = GridHistogram::EstimateOverlapSelectivity(hr, hs);
  PlannerContext ctx;
  ctx.r_tree_available = true;
  ctx.s_tree_available = true;
  JoinPlan plan = PlanJoin(stats, ctx);
  // Whatever it picks must be feasible and not the degenerate fallback.
  EXPECT_NE(plan.strategy, JoinStrategy::kJoinIndex);  // unavailable
  EXPECT_NE(plan.strategy, JoinStrategy::kSortMergeZOrder);
}

}  // namespace
}  // namespace spatialjoin
