#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geometry/buffer.h"
#include "geometry/polygon.h"
#include "geometry/polyline.h"

namespace spatialjoin {
namespace {

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

Polygon Triangle() { return Polygon({{0, 0}, {4, 0}, {0, 4}}); }

TEST(PolygonTest, AreaAndOrientation) {
  EXPECT_DOUBLE_EQ(UnitSquare().Area(), 1.0);
  EXPECT_DOUBLE_EQ(Triangle().Area(), 8.0);
  EXPECT_TRUE(UnitSquare().IsCounterClockwise());
  Polygon cw = UnitSquare();
  cw.Reverse();
  EXPECT_FALSE(cw.IsCounterClockwise());
  EXPECT_DOUBLE_EQ(cw.Area(), 1.0);  // area is orientation-free
}

TEST(PolygonTest, Centroid) {
  EXPECT_EQ(UnitSquare().Centroid(), Point(0.5, 0.5));
  Point c = Triangle().Centroid();
  EXPECT_NEAR(c.x, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.y, 4.0 / 3.0, 1e-12);
}

TEST(PolygonTest, BoundingBox) {
  EXPECT_EQ(Triangle().BoundingBox(), Rectangle(0, 0, 4, 4));
}

TEST(PolygonTest, ContainsPoint) {
  Polygon square = UnitSquare();
  EXPECT_TRUE(square.ContainsPoint(Point(0.5, 0.5)));
  EXPECT_TRUE(square.ContainsPoint(Point(0, 0)));      // vertex
  EXPECT_TRUE(square.ContainsPoint(Point(0.5, 0)));    // edge
  EXPECT_FALSE(square.ContainsPoint(Point(1.5, 0.5)));
  EXPECT_FALSE(square.ContainsPoint(Point(-0.001, 0.5)));
}

TEST(PolygonTest, ContainsPointConcave) {
  // A "C" shape: contains (0.5, 2.5) in the arm but not (2, 2) in the
  // notch.
  Polygon c_shape({{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {3, 3},
                   {3, 4}, {0, 4}});
  EXPECT_TRUE(c_shape.ContainsPoint(Point(0.5, 2.5)));
  EXPECT_FALSE(c_shape.ContainsPoint(Point(2, 2)));
  EXPECT_TRUE(c_shape.ContainsPoint(Point(2, 0.5)));
}

TEST(PolygonTest, Intersects) {
  Polygon a = UnitSquare();
  Polygon shifted({{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {0.5, 1.5}});
  Polygon apart({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  Polygon inner({{0.25, 0.25}, {0.75, 0.25}, {0.75, 0.75}, {0.25, 0.75}});
  EXPECT_TRUE(a.Intersects(shifted));
  EXPECT_FALSE(a.Intersects(apart));
  EXPECT_TRUE(a.Intersects(inner));  // containment counts as intersection
  EXPECT_TRUE(inner.Intersects(a));
}

TEST(PolygonTest, ContainsPolygon) {
  Polygon outer({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  Polygon inner({{2, 2}, {4, 2}, {4, 4}, {2, 4}});
  Polygon crossing({{8, 8}, {12, 8}, {12, 12}, {8, 12}});
  EXPECT_TRUE(outer.ContainsPolygon(inner));
  EXPECT_FALSE(inner.ContainsPolygon(outer));
  EXPECT_FALSE(outer.ContainsPolygon(crossing));
  EXPECT_TRUE(outer.ContainsPolygon(outer));
}

TEST(PolygonTest, DistanceToPoint) {
  Polygon square = UnitSquare();
  EXPECT_DOUBLE_EQ(square.DistanceToPoint(Point(0.5, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(square.DistanceToPoint(Point(2, 0.5)), 1.0);
  EXPECT_DOUBLE_EQ(square.DistanceToPoint(Point(4, 5)), 5.0);
}

TEST(PolygonTest, DistanceToPolygon) {
  Polygon a = UnitSquare();
  Polygon b({{3, 0}, {4, 0}, {4, 1}, {3, 1}});
  EXPECT_DOUBLE_EQ(a.DistanceToPolygon(b), 2.0);
  Polygon overlapping({{0.5, 0.5}, {2, 0.5}, {2, 2}, {0.5, 2}});
  EXPECT_DOUBLE_EQ(a.DistanceToPolygon(overlapping), 0.0);
}

TEST(PolygonTest, RegularNGon) {
  Polygon hex = Polygon::RegularNGon(Point(0, 0), 2.0, 6);
  EXPECT_EQ(hex.size(), 6u);
  // Area of a regular hexagon with circumradius r: (3√3/2)·r².
  EXPECT_NEAR(hex.Area(), 3.0 * std::sqrt(3.0) / 2.0 * 4.0, 1e-9);
  Point c = hex.Centroid();
  EXPECT_NEAR(c.x, 0.0, 1e-9);
  EXPECT_NEAR(c.y, 0.0, 1e-9);
}

TEST(PolygonTest, FromRectangleRoundTrip) {
  Rectangle r(1, 2, 5, 7);
  Polygon poly = Polygon::FromRectangle(r);
  EXPECT_EQ(poly.BoundingBox(), r);
  EXPECT_DOUBLE_EQ(poly.Area(), r.Area());
}

TEST(PolylineTest, LengthAndMidpoint) {
  Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.Length(), 7.0);
  EXPECT_EQ(line.Midpoint(), Point(3, 0.5));
  EXPECT_EQ(line.BoundingBox(), Rectangle(0, 0, 3, 4));
}

TEST(PolylineTest, Distances) {
  Polyline line({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(line.DistanceToPoint(Point(5, 3)), 3.0);
  Polyline other({{0, 2}, {10, 2}});
  EXPECT_DOUBLE_EQ(line.DistanceToPolyline(other), 2.0);
  Polyline crossing({{5, -1}, {5, 1}});
  EXPECT_DOUBLE_EQ(line.DistanceToPolyline(crossing), 0.0);
  EXPECT_TRUE(line.Intersects(crossing));
  EXPECT_FALSE(line.Intersects(other));
}

TEST(BufferTest, PointInPolygonBuffer) {
  Polygon square = UnitSquare();
  // The paper's flagship predicate: point within d of a polygon.
  EXPECT_TRUE(WithinBufferOfPolygon(Point(0.5, 0.5), square, 0.0));
  EXPECT_TRUE(WithinBufferOfPolygon(Point(2, 0.5), square, 1.0));
  EXPECT_FALSE(WithinBufferOfPolygon(Point(2, 0.5), square, 0.9));
}

TEST(BufferTest, RectangleBuffers) {
  Rectangle r(0, 0, 1, 1);
  EXPECT_TRUE(WithinBufferOfRectangle(Point(1.5, 0.5), r, 0.5));
  EXPECT_FALSE(WithinBufferOfRectangle(Point(1.6, 0.5), r, 0.5));
  EXPECT_TRUE(RectanglesWithinDistance(r, Rectangle(2, 0, 3, 1), 1.0));
  EXPECT_FALSE(RectanglesWithinDistance(r, Rectangle(2.5, 0, 3, 1), 1.0));
  EXPECT_EQ(BufferMbr(r, 1.0), Rectangle(-1, -1, 2, 2));
}

// Property: for random convex polygons, Intersects agrees with a
// distance-0 check, and the centroid lies inside.
TEST(PolygonPropertyTest, IntersectsAgreesWithDistance) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Point ca(rng.NextDouble(0, 20), rng.NextDouble(0, 20));
    Point cb(rng.NextDouble(0, 20), rng.NextDouble(0, 20));
    Polygon a = Polygon::RegularNGon(ca, rng.NextDouble(0.5, 3), 8);
    Polygon b = Polygon::RegularNGon(cb, rng.NextDouble(0.5, 3), 8);
    EXPECT_EQ(a.Intersects(b), a.DistanceToPolygon(b) == 0.0);
    EXPECT_TRUE(a.ContainsPoint(a.Centroid()));
  }
}

}  // namespace
}  // namespace spatialjoin
