#!/usr/bin/env python3
"""Tests for scripts/lint/sj_lint.py.

Each fixture under tests/lint/fixtures/ is an intentionally-violating
"repo" (the fixtures directory is excluded from real lint runs by the
driver's SKIP_DIR_NAMES). The tests pin, per rule: that it fires on the
violation, that near-miss idioms stay clean, and that the
`// sj-lint: allow(rule)` escape hatch works. A final test runs the
driver against the actual repo and requires a clean exit — the same
invocation CI gates on.
"""

import contextlib
import io
import json
import os
import sys
import unittest

TEST_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TEST_DIR))
FIXTURE_ROOT = os.path.join(TEST_DIR, "fixtures")

sys.path.insert(0, os.path.join(REPO_ROOT, "scripts", "lint"))
import sj_lint  # noqa: E402


def lint(rel_path, rules=None):
    selected = (
        {name: sj_lint.RULES[name] for name in rules}
        if rules else sj_lint.RULES)
    return sj_lint.lint_file(FIXTURE_ROOT, rel_path, selected)


class RawClockTest(unittest.TestCase):
    def test_fires_once_and_respects_suppression(self):
        findings = lint("src/core/bad_clock.cc", ["raw-clock"])
        self.assertEqual([f.line for f in findings], [11])
        self.assertEqual(findings[0].rule, "raw-clock")

    def test_timer_header_is_exempt(self):
        f = sj_lint.SourceFile(
            "src/obs/timer.h",
            ["std::chrono::steady_clock::now();"],
            ["std::chrono::steady_clock::now();"])
        self.assertEqual(list(sj_lint.check_raw_clock(f)), [])


class NakedNewTest(unittest.TestCase):
    def test_fires_on_new_and_delete_only(self):
        findings = lint("src/core/bad_new.cc", ["naked-new"])
        self.assertEqual([f.line for f in findings], [11, 13])

    def test_storage_is_exempt(self):
        f = sj_lint.SourceFile(
            "src/storage/frames.cc", ["int* p = new int;"],
            ["int* p = new int;"])
        self.assertEqual(list(sj_lint.check_naked_new(f)), [])


class StdoutInLibTest(unittest.TestCase):
    def test_fires_on_cout_and_printf_only(self):
        findings = lint("src/core/bad_stdout.cc", ["stdout-in-lib"])
        self.assertEqual([f.line for f in findings], [9, 10])

    def test_bench_is_exempt(self):
        f = sj_lint.SourceFile(
            "bench/b.cc", ['std::cout << "row\\n";'],
            ['std::cout << "row\\n";'])
        self.assertEqual(list(sj_lint.check_stdout_in_lib(f)), [])


class StderrInLibTest(unittest.TestCase):
    def test_fires_on_cerr_and_fprintf_stderr_only(self):
        findings = lint("src/core/bad_stderr.cc", ["stderr-in-lib"])
        self.assertEqual([f.line for f in findings], [10, 11, 12])
        self.assertEqual({f.rule for f in findings}, {"stderr-in-lib"})

    def test_non_library_code_is_exempt(self):
        for path in ("tools/sj_inspect.cc", "tests/t.cc", "bench/b.cc"):
            f = sj_lint.SourceFile(
                path, ['std::fprintf(stderr, "x");'],
                ['std::fprintf(stderr, "x");'])
            self.assertEqual(list(sj_lint.check_stderr_in_lib(f)), [])


class DetailIncludeTest(unittest.TestCase):
    def test_fires_only_on_unfriended_cross_subsystem_include(self):
        findings = lint("src/exec/bad_detail.cc", ["detail-include"])
        self.assertEqual([f.line for f in findings], [6])
        self.assertIn("rtree", findings[0].message)


class DcheckSideEffectTest(unittest.TestCase):
    def test_fires_on_mutating_conditions_only(self):
        findings = lint("src/core/bad_dcheck.cc", ["dcheck-side-effect"])
        self.assertEqual([f.line for f in findings], [8, 9])


class IostreamInLibTest(unittest.TestCase):
    def test_fires_on_include_and_respects_suppression(self):
        findings = lint("src/core/bad_iostream.cc", ["iostream-in-lib"])
        self.assertEqual([f.line for f in findings], [6, 7])
        self.assertEqual({f.rule for f in findings}, {"iostream-in-lib"})

    def test_non_library_code_is_exempt(self):
        for path in ("bench/b.cc", "tools/sj_inspect.cc", "examples/e.cc"):
            f = sj_lint.SourceFile(
                path, ["#include <iostream>"], ["#include <iostream>"])
            self.assertEqual(
                list(sj_lint.check_iostream_in_lib(f)), [])


class MetricsInServerTest(unittest.TestCase):
    def test_fires_on_registry_access_and_respects_suppression(self):
        findings = lint("src/server/bad_metrics.cc", ["metrics-in-server"])
        self.assertEqual([f.line for f in findings], [14, 15, 17, 19])
        self.assertEqual({f.rule for f in findings}, {"metrics-in-server"})

    def test_telemetry_owner_and_other_layers_are_exempt(self):
        line = 'MetricsRegistry::Global().GetCounter("x");'
        for path in ("src/server/telemetry.cc", "src/storage/pool.cc",
                     "tools/sj_server.cc", "tests/t.cc"):
            f = sj_lint.SourceFile(path, [line], [line])
            self.assertEqual(
                list(sj_lint.check_metrics_in_server(f)), [], path)

    def test_telemetry_facade_calls_stay_clean(self):
        line = "ServiceTelemetry::Global().OnQueryAdmitted();"
        f = sj_lint.SourceFile("src/server/session.cc", [line], [line])
        self.assertEqual(list(sj_lint.check_metrics_in_server(f)), [])


class JsonOutputTest(unittest.TestCase):
    """The --json schema is shared with sj_analyze: exactly
    {rule, path, line, message, suppressed}, suppressed findings
    included, exit code driven by unsuppressed findings only."""

    def run_json(self, *argv):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = sj_lint.main(list(argv))
        return code, json.loads(out.getvalue())

    def test_schema_and_suppressed_flag(self):
        code, findings = self.run_json(
            "--root", FIXTURE_ROOT, "--rule", "iostream-in-lib",
            "--json", "src/core/bad_iostream.cc")
        self.assertEqual(code, 1)
        self.assertEqual(len(findings), 3)
        for f in findings:
            self.assertEqual(
                sorted(f.keys()),
                ["line", "message", "path", "rule", "suppressed"])
        self.assertEqual([f["suppressed"] for f in findings],
                         [False, False, True])

    def test_all_suppressed_exits_zero(self):
        code, findings = self.run_json(
            "--root", REPO_ROOT, "--json", "src")
        self.assertEqual(code, 0)
        self.assertTrue(all(f["suppressed"] for f in findings))


class SuppressionSyntaxTest(unittest.TestCase):
    def test_same_line_and_preceding_line_and_multi_rule(self):
        raw = [
            "int* a = new int;  // sj-lint: allow(naked-new)",
            "// sj-lint: allow(naked-new, raw-clock)",
            "int* b = new int;",
            "int* c = new int;",
        ]
        self.assertEqual(
            sj_lint.allowed_rules(raw, 1), {"naked-new"})
        self.assertEqual(
            sj_lint.allowed_rules(raw, 3), {"naked-new", "raw-clock"})
        self.assertEqual(sj_lint.allowed_rules(raw, 4), set())


class StripperTest(unittest.TestCase):
    def test_block_comments_and_strings(self):
        code = sj_lint.strip_comments_and_strings([
            "int x; /* new int",
            "still comment */ int y = 1;",
            'const char* s = "delete this";',
        ])
        self.assertNotIn("new", code[0])
        self.assertIn("int y = 1;", code[1])
        self.assertNotIn("delete", code[2])


class RepoIsCleanTest(unittest.TestCase):
    def test_main_on_repo_exits_zero(self):
        self.assertEqual(sj_lint.main(["--root", REPO_ROOT]), 0)


class CliTest(unittest.TestCase):
    def test_unknown_rule_is_usage_error(self):
        self.assertEqual(
            sj_lint.main(["--rule", "no-such-rule",
                          "--root", REPO_ROOT]), 2)

    def test_missing_path_is_usage_error(self):
        self.assertEqual(
            sj_lint.main(["--root", REPO_ROOT, "does/not/exist.cc"]), 2)

    def test_fixture_scan_exits_one(self):
        self.assertEqual(sj_lint.main(["--root", FIXTURE_ROOT, "src"]), 1)


if __name__ == "__main__":
    unittest.main()
