// Fixture: detail-include must fire on a cross-subsystem detail header
// that is not whitelisted, and must NOT fire on same-subsystem or
// DETAIL_FRIENDS includes.
#include "core/join_detail.h"    // exec is a whitelisted friend: fine
#include "exec/pool_detail.h"    // own subsystem: fine
#include "rtree/split_detail.h"  // finding: private to rtree/

namespace spatialjoin {}
