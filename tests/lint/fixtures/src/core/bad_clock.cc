// Fixture: raw-clock must fire on a direct steady_clock read in library
// code, and must NOT fire on the commented or string occurrences below.
#include <chrono>

namespace spatialjoin {

int64_t BadNow() {
  // std::chrono::steady_clock::now() in a comment is fine.
  const char* doc = "std::chrono::steady_clock::now()";
  (void)doc;
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int64_t SuppressedNow() {
  // Justified: fixture demonstrates the suppression syntax.
  // sj-lint: allow(raw-clock)
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace spatialjoin
