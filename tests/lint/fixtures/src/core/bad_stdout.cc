// Fixture: stdout-in-lib must fire on std::cout and bare printf in
// src/ code, and must NOT fire on fprintf/snprintf or stderr.
#include <cstdio>
#include <iostream>

namespace spatialjoin {

void Bad() {
  std::cout << "library writing to stdout\n";  // finding
  printf("also stdout\n");                     // finding
}

void Fine(char* buf) {
  // stderr writes are stderr-in-lib's concern, not stdout-in-lib's.
  std::cerr << "not a stdout finding\n";
  std::fprintf(stderr, "not a stdout finding either\n");
  std::snprintf(buf, 4, "ok");
}

}  // namespace spatialjoin
