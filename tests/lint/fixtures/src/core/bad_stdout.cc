// Fixture: stdout-in-lib must fire on std::cout and bare printf in
// src/ code, and must NOT fire on fprintf/snprintf or stderr.
#include <cstdio>
#include <iostream>

namespace spatialjoin {

void Bad() {
  std::cout << "library writing to stdout\n";  // finding
  printf("also stdout\n");                     // finding
}

void Fine(char* buf) {
  std::cerr << "stderr is fine\n";
  std::fprintf(stderr, "fprintf to stderr is fine\n");
  std::snprintf(buf, 4, "ok");
}

}  // namespace spatialjoin
