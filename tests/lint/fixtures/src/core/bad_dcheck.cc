// Fixture: dcheck-side-effect must fire when an SJ_DCHECK condition
// mutates state, and must NOT fire on pure comparisons.
#include "common/check.h"

namespace spatialjoin {

void Bad(int n, bool* done) {
  SJ_DCHECK(n++ < 8);       // finding: increment vanishes under NDEBUG
  SJ_DCHECK(*done = true);  // finding: assignment, not comparison
}

void Fine(int n, int m) {
  SJ_DCHECK(n == m);
  SJ_DCHECK(n <= m);
  SJ_DCHECK_GE(n, 0);
}

}  // namespace spatialjoin
