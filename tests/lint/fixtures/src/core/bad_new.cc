// Fixture: naked-new must fire on the new/delete expressions, and must
// NOT fire on deleted special members or comments.
namespace spatialjoin {

class NoCopy {
 public:
  NoCopy(const NoCopy&) = delete;             // not a finding
  NoCopy& operator=(const NoCopy&) = delete;  // not a finding
};

int* Alloc() { return new int(7); }  // finding

void Free(int* p) { delete p; }  // finding

int* Suppressed() {
  // sj-lint: allow(naked-new)
  return new int(9);
}

}  // namespace spatialjoin
