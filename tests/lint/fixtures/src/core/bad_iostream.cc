// Fixture for iostream-in-lib: the bare include fires (line 6), the
// spaced form fires (line 7), and an allow()-ed include is suppressed.
// Near-misses — <iosfwd>, <sstream>, and a commented include — must
// stay clean.

#include <iostream>
#  include   <iostream>
// A justification would go here in real code.
#include <iostream>  // sj-lint: allow(iostream-in-lib)
#include <iosfwd>
#include <sstream>
// #include <iostream>
