// Fixture: stderr-in-lib must fire on std::cerr and fprintf(stderr)
// in src/ code, must NOT fire on other streams or snprintf, and must
// respect the allow escape hatch.
#include <cstdio>
#include <iostream>

namespace spatialjoin {

void Bad() {
  std::cerr << "library writing to stderr\n";  // finding
  std::fprintf(stderr, "also stderr\n");       // finding
  fprintf(stderr, "unqualified too\n");        // finding
}

void Fine(std::FILE* log, char* buf) {
  std::fprintf(log, "other streams are fine\n");
  std::snprintf(buf, 4, "ok");
  // sj-lint: allow(stderr-in-lib) — fixture exercises the escape hatch.
  std::fprintf(stderr, "suppressed\n");
}

}  // namespace spatialjoin
