// Fixture: metrics-in-server must fire on direct MetricsRegistry access
// in the server layer — the named-instrument getters and the singleton
// itself — and must NOT fire on mentions in comments or strings, on the
// suppressed line, or on ServiceTelemetry calls (the sanctioned path).
#include "obs/metrics.h"

namespace spatialjoin {
namespace server {

void BadRequestPath() {
  // MetricsRegistry::Global() in a comment is fine.
  const char* doc = "GetCounter(\"server.sessions.opened\")";
  (void)doc;
  MetricsRegistry::Global();
  auto* c = MetricsRegistry::Global().GetCounter("server.q");
  (void)c;
  auto* g = registry->GetGauge("server.inflight");
  (void)g;
  auto* h = registry->GetHistogram("server.wall_ns");
  (void)h;
}

void SanctionedPath() {
  // The telemetry facade is the allowed route.
  ServiceTelemetry::Global().OnSessionOpened();
  // Justified: fixture demonstrates the suppression syntax.
  // sj-lint: allow(metrics-in-server)
  MetricsRegistry::Global().GetCounter("server.suppressed");
}

}  // namespace server
}  // namespace spatialjoin
