#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/random.h"
#include "zorder/hilbert.h"
#include "zorder/zorder.h"

namespace spatialjoin {
namespace {

TEST(HilbertTest, SmallOrderKnownValues) {
  // Order 1: the 2x2 Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
  EXPECT_EQ(XYToHilbert(0, 0, 1), 0u);
  EXPECT_EQ(XYToHilbert(0, 1, 1), 1u);
  EXPECT_EQ(XYToHilbert(1, 1, 1), 2u);
  EXPECT_EQ(XYToHilbert(1, 0, 1), 3u);
}

TEST(HilbertTest, BijectionOnFullSmallGrid) {
  const int order = 4;  // 16x16
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      uint64_t d = XYToHilbert(x, y, order);
      EXPECT_LT(d, 256u);
      EXPECT_TRUE(seen.insert(d).second) << "collision at " << x << ","
                                         << y;
      uint32_t rx, ry;
      HilbertToXY(d, order, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(HilbertTest, RoundTripAtFullResolution) {
  Rng rng(71);
  const int order = ZCell::kMaxLevel;
  for (int i = 0; i < 2000; ++i) {
    uint32_t x = static_cast<uint32_t>(
        rng.NextUint64(uint64_t{1} << order));
    uint32_t y = static_cast<uint32_t>(
        rng.NextUint64(uint64_t{1} << order));
    uint64_t d = XYToHilbert(x, y, order);
    uint32_t rx, ry;
    HilbertToXY(d, order, &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(HilbertTest, CurveStepsAreUnitSteps) {
  // The defining locality property z-order lacks: consecutive Hilbert
  // indices are always spatially adjacent (Manhattan distance 1).
  const int order = 5;  // 32x32 = 1024 cells
  for (uint64_t d = 0; d + 1 < 1024; ++d) {
    uint32_t x1, y1, x2, y2;
    HilbertToXY(d, order, &x1, &y1);
    HilbertToXY(d + 1, order, &x2, &y2);
    int dx = std::abs(static_cast<int>(x1) - static_cast<int>(x2));
    int dy = std::abs(static_cast<int>(y1) - static_cast<int>(y2));
    EXPECT_EQ(dx + dy, 1) << "at d=" << d;
  }
}

TEST(HilbertTest, ZOrderStepsAreNotUnitSteps) {
  // Contrast: z-order consecutive indices jump (the paper's Fig. 1).
  int jumps = 0;
  for (uint64_t z = 0; z + 1 < 1024; ++z) {
    uint32_t x1, y1, x2, y2;
    // Inverse of InterleaveBits restricted to `bits` bits.
    DeinterleaveBits(z, &x1, &y1);
    DeinterleaveBits(z + 1, &x2, &y2);
    int dx = std::abs(static_cast<int>(x1) - static_cast<int>(x2));
    int dy = std::abs(static_cast<int>(y1) - static_cast<int>(y2));
    if (dx + dy > 1) ++jumps;
  }
  EXPECT_GT(jumps, 100);
}

TEST(HilbertTest, BetterAverageLocalityThanZOrder) {
  // Mean spatial distance between curve-consecutive cells: Hilbert = 1
  // by construction, z-order strictly worse. (Neither fixes the paper's
  // global impossibility — see the naive sort-merge tests.)
  const int order = 6;
  const uint64_t cells = 1 << (2 * order);
  double z_total = 0;
  for (uint64_t v = 0; v + 1 < cells; ++v) {
    uint32_t x1, y1, x2, y2;
    DeinterleaveBits(v, &x1, &y1);
    DeinterleaveBits(v + 1, &x2, &y2);
    z_total += std::hypot(static_cast<double>(x1) - x2,
                          static_cast<double>(y1) - y2);
  }
  double z_mean = z_total / static_cast<double>(cells - 1);
  EXPECT_GT(z_mean, 1.3);  // hilbert's mean is exactly 1.0
}

TEST(HilbertTest, GridHelperMatchesManualEncoding) {
  ZGrid grid(Rectangle(0, 0, 100, 100));
  Point p(12.5, 81.25);
  uint32_t cx, cy;
  grid.CellCoords(p, &cx, &cy);
  EXPECT_EQ(HilbertValueOf(grid, p),
            XYToHilbert(cx, cy, ZCell::kMaxLevel));
}

}  // namespace
}  // namespace spatialjoin
