#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/join.h"
#include "core/select.h"
#include "core/spatial_join.h"
#include "core/theta_ops.h"
#include "exec/frozen_tree.h"
#include "exec/parallel_join.h"
#include "exec/parallel_select.h"
#include "exec/partitioned_join.h"
#include "exec/thread_pool.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/rect_generator.h"

namespace spatialjoin {
namespace {

using MatchSet = std::set<std::pair<TupleId, TupleId>>;

MatchSet AsSet(const JoinResult& result) {
  return MatchSet(result.matches.begin(), result.matches.end());
}

// The Table 1 operator family, exercised against every parallel strategy.
struct NamedOp {
  const char* label;
  std::unique_ptr<ThetaOperator> op;
};

std::vector<NamedOp> Table1Operators() {
  std::vector<NamedOp> ops;
  ops.push_back({"within_distance", std::make_unique<WithinDistanceOp>(12.0)});
  ops.push_back({"overlaps", std::make_unique<OverlapsOp>()});
  ops.push_back({"includes", std::make_unique<IncludesOp>()});
  ops.push_back({"contained_in", std::make_unique<ContainedInOp>()});
  ops.push_back({"northwest_of", std::make_unique<NorthwestOfOp>()});
  ops.push_back({"adjacent", std::make_unique<AdjacentOp>()});
  ops.push_back(
      {"reachable_within", std::make_unique<ReachableWithinOp>(5.0, 2.0)});
  return ops;
}

// Two rectangle relations with R-trees, mirroring the dispatcher fixture,
// plus thread pools of every width under test.
class ParallelExecTest : public ::testing::Test {
 protected:
  ParallelExecTest()
      : disk_(2000), pool_(&disk_, 2048), world_(0, 0, 600, 600) {
    Schema schema({{"id", ValueType::kInt64},
                   {"box", ValueType::kRectangle}});
    r_ = std::make_unique<Relation>("r", schema, &pool_);
    s_ = std::make_unique<Relation>("s", schema, &pool_);
    r_rtree_ = std::make_unique<RTree>(&pool_, RTreeSplit::kQuadratic, 8);
    s_rtree_ = std::make_unique<RTree>(&pool_, RTreeSplit::kQuadratic, 8);
    RectGenerator gen_r(world_, 21);
    RectGenerator gen_s(world_, 22);
    for (int64_t i = 0; i < 200; ++i) {
      Rectangle box_r = gen_r.NextRect(2, 30);
      Rectangle box_s = gen_s.NextRect(2, 30);
      r_rtree_->Insert(box_r, r_->Insert(Tuple({Value(i), Value(box_r)})));
      s_rtree_->Insert(box_s, s_->Insert(Tuple({Value(i), Value(box_s)})));
    }
    r_adapter_ = std::make_unique<RTreeGenTree>(r_rtree_.get(), r_.get(), 1);
    s_adapter_ = std::make_unique<RTreeGenTree>(s_rtree_.get(), s_.get(), 1);
  }

  DiskManager disk_;
  BufferPool pool_;
  Rectangle world_;
  std::unique_ptr<Relation> r_;
  std::unique_ptr<Relation> s_;
  std::unique_ptr<RTree> r_rtree_;
  std::unique_ptr<RTree> s_rtree_;
  std::unique_ptr<RTreeGenTree> r_adapter_;
  std::unique_ptr<RTreeGenTree> s_adapter_;
};

constexpr int kThreadWidths[] = {1, 2, 4, 8};

TEST_F(ParallelExecTest, ParallelTreeJoinIsByteIdenticalToSequential) {
  exec::FrozenTree r_frozen = exec::FrozenTree::Materialize(*r_adapter_);
  exec::FrozenTree s_frozen = exec::FrozenTree::Materialize(*s_adapter_);
  for (const NamedOp& entry : Table1Operators()) {
    // Sequential baseline over the same frozen inputs the parallel join
    // sees, so the comparison is execution-strategy-only.
    JoinResult sequential = TreeJoin(r_frozen, s_frozen, *entry.op);
    for (int width : kThreadWidths) {
      exec::ThreadPool workers(width);
      JoinResult parallel =
          exec::ParallelTreeJoin(r_frozen, s_frozen, *entry.op, &workers);
      // Not just the same set: the same matches in the same order, and
      // the same work counters — the chunk merge reproduces sequential
      // execution exactly.
      EXPECT_EQ(parallel.matches, sequential.matches)
          << entry.label << " @ " << width << " threads";
      EXPECT_EQ(parallel.theta_tests, sequential.theta_tests)
          << entry.label << " @ " << width << " threads";
      EXPECT_EQ(parallel.theta_upper_tests, sequential.theta_upper_tests)
          << entry.label << " @ " << width << " threads";
      EXPECT_EQ(parallel.qual_pairs_examined, sequential.qual_pairs_examined)
          << entry.label << " @ " << width << " threads";
    }
  }
}

TEST_F(ParallelExecTest, PartitionedJoinMatchesSequentialResultSet) {
  std::vector<exec::JoinItem> r_items = exec::CollectJoinItems(*r_, 1);
  std::vector<exec::JoinItem> s_items = exec::CollectJoinItems(*s_, 1);
  for (const NamedOp& entry : Table1Operators()) {
    ASSERT_TRUE(exec::PartitionedJoinSupports(*entry.op)) << entry.label;
    JoinResult sequential = TreeJoin(*r_adapter_, *s_adapter_, *entry.op);
    MatchSet truth = AsSet(sequential);
    JoinResult reference;
    for (int width : kThreadWidths) {
      exec::ThreadPool workers(width);
      JoinResult partitioned =
          exec::PartitionedJoin(r_items, s_items, *entry.op, &workers);
      EXPECT_EQ(AsSet(partitioned), truth)
          << entry.label << " @ " << width << " threads";
      if (width == kThreadWidths[0]) {
        reference = partitioned;
      } else {
        // Determinism across widths: identical ordered output, not only
        // an identical set.
        EXPECT_EQ(partitioned.matches, reference.matches)
            << entry.label << " @ " << width << " threads";
      }
    }
  }
}

TEST_F(ParallelExecTest, ParallelSelectMatchesSequentialSelect) {
  exec::FrozenTree s_frozen = exec::FrozenTree::Materialize(*s_adapter_);
  RectGenerator gen(world_, 99);
  OverlapsOp overlaps;
  WithinDistanceOp within(15.0);
  for (const ThetaOperator* op :
       {static_cast<const ThetaOperator*>(&overlaps),
        static_cast<const ThetaOperator*>(&within)}) {
    for (int q = 0; q < 5; ++q) {
      Value selector(gen.NextRect(20, 80));
      SelectResult sequential = SpatialSelect(selector, s_frozen, *op);
      for (int width : kThreadWidths) {
        exec::ThreadPool workers(width);
        SelectResult parallel =
            exec::ParallelSelect(selector, s_frozen, *op, &workers);
        EXPECT_EQ(parallel.matching_nodes, sequential.matching_nodes);
        EXPECT_EQ(parallel.matching_tuples, sequential.matching_tuples);
        EXPECT_EQ(parallel.theta_tests, sequential.theta_tests);
        EXPECT_EQ(parallel.theta_upper_tests, sequential.theta_upper_tests);
      }
    }
  }
}

TEST_F(ParallelExecTest, DispatcherRunsParallelStrategies) {
  exec::ThreadPool workers(4);
  SpatialJoinContext ctx;
  ctx.r = r_.get();
  ctx.col_r = 1;
  ctx.s = s_.get();
  ctx.col_s = 1;
  ctx.r_tree = r_adapter_.get();
  ctx.s_tree = s_adapter_.get();
  ctx.exec_pool = &workers;
  OverlapsOp op;
  JoinResult baseline = ExecuteJoin(JoinStrategy::kTreeJoin, ctx, op);
  JoinResult parallel = ExecuteJoin(JoinStrategy::kParallelTreeJoin, ctx, op);
  JoinResult partitioned =
      ExecuteJoin(JoinStrategy::kPartitionedJoin, ctx, op);
  EXPECT_EQ(parallel.matches, baseline.matches);
  EXPECT_EQ(AsSet(partitioned), AsSet(baseline));

  RectGenerator gen(world_, 7);
  Value selector(gen.NextRect(20, 80));
  JoinResult tree_select = ExecuteSelect(SelectStrategy::kTree, ctx, selector,
                                         kInvalidTupleId, op);
  JoinResult par_select = ExecuteSelect(SelectStrategy::kParallelTree, ctx,
                                        selector, kInvalidTupleId, op);
  EXPECT_EQ(par_select.matches, tree_select.matches);
}

// Rectangles laid out to straddle tile boundaries: with a forced 4x4 grid
// over [0,100]², these spans are replicated into several tiles, and the
// reference-point rule must emit each qualifying pair exactly once.
TEST(PartitionedJoinDedup, BoundarySpanningRectanglesEmitNoDuplicates) {
  std::vector<exec::JoinItem> r_items;
  std::vector<exec::JoinItem> s_items;
  TupleId next = 0;
  // Wide horizontal slabs crossing every vertical tile boundary, and tall
  // vertical slabs crossing every horizontal one — every R/S pair
  // overlaps in many tiles.
  for (int i = 0; i < 4; ++i) {
    Rectangle horizontal(0.0, 10.0 + 20.0 * i, 100.0, 18.0 + 20.0 * i);
    r_items.push_back({next++, horizontal, Value(horizontal)});
    Rectangle vertical(10.0 + 20.0 * i, 0.0, 18.0 + 20.0 * i, 100.0);
    s_items.push_back({next++, vertical, Value(vertical)});
  }
  // A rectangle whose corner sits exactly on a tile boundary.
  Rectangle on_corner(25.0, 25.0, 75.0, 75.0);
  r_items.push_back({next++, on_corner, Value(on_corner)});
  s_items.push_back({next++, on_corner, Value(on_corner)});

  OverlapsOp op;
  exec::ThreadPool workers(4);
  exec::PartitionedJoinOptions options;
  options.grid_cols = 4;
  options.grid_rows = 4;
  JoinResult result =
      exec::PartitionedJoin(r_items, s_items, op, &workers, options);

  // Brute-force truth over the raw items.
  MatchSet truth;
  for (const exec::JoinItem& ri : r_items) {
    for (const exec::JoinItem& si : s_items) {
      if (op.Theta(ri.geometry, si.geometry)) truth.insert({ri.tid, si.tid});
    }
  }
  EXPECT_EQ(AsSet(result), truth);
  EXPECT_GE(truth.size(), 16u);  // the slab grid alone yields 4x4 matches
  // No pair was emitted twice despite multi-tile replication — checked on
  // the raw match list, before any normalization.
  EXPECT_EQ(result.matches.size(), AsSet(result).size());
}

}  // namespace
}  // namespace spatialjoin
