#ifndef SPATIALJOIN_TESTS_JSON_VALIDATOR_H_
#define SPATIALJOIN_TESTS_JSON_VALIDATOR_H_

// Minimal recursive-descent JSON syntax checker for tests. Validates
// structure only (objects, arrays, strings, numbers, literals); it does
// not build a document tree. Enough to assert that the observability
// layer's serializers emit well-formed JSON.

#include <cctype>
#include <string>
#include <string_view>

namespace spatialjoin {
namespace testing_json {

class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Value() {
    if (pos_ >= text_.size()) return Fail("unexpected end");
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    if (!Eat('{')) return Fail("expected '{'");
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return Fail("expected object key");
      SkipWs();
      if (!Eat(':')) return Fail("expected ':'");
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return Fail("expected ',' or '}'");
    }
  }

  bool Array() {
    if (!Eat('[')) return Fail("expected '['");
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  bool String() {
    if (!Eat('"')) return Fail("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return Fail("bad escape character");
        }
      }
    }
    return Fail("unterminated string");
  }

  bool Number() {
    size_t start = pos_;
    Eat('-');
    if (!DigitRun()) return Fail("expected digit");
    if (Eat('.') && !DigitRun()) return Fail("expected fraction digits");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!DigitRun()) return Fail("expected exponent digits");
    }
    return pos_ > start;
  }

  bool DigitRun() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

/// True iff `text` is one syntactically valid JSON document.
inline bool IsValidJson(std::string_view text) {
  return Validator(text).Valid();
}

}  // namespace testing_json
}  // namespace spatialjoin

#endif  // SPATIALJOIN_TESTS_JSON_VALIDATOR_H_
