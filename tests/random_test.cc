#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"

namespace spatialjoin {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedValuesInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble(2.5, 3.5);
    EXPECT_GE(d, 2.5);
    EXPECT_LT(d, 3.5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.Add(rng.NextGaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(QuantileTest, InterpolatesSorted) {
  std::vector<double> values{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
}

TEST(MathUtilTest, CeilDivAndPow) {
  EXPECT_EQ(CeilDiv(7, 2), 4);
  EXPECT_EQ(CeilDiv(8, 2), 4);
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(IPow(10, 6), 1000000);
  EXPECT_EQ(IPow(2, 0), 1);
  EXPECT_EQ(CeilToInt64(2.1), 3);
  EXPECT_EQ(CeilToInt64(-1.0), 0);
  EXPECT_EQ(Clamp(5, 0, 3), 3);
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
}

TEST(StatusTest, CodesAndMessages) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status nf = Status::NotFound("tuple 7");
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ(nf.code(), StatusCode::kNotFound);
  EXPECT_EQ(nf.ToString(), "NOT_FOUND: tuple 7");
}

TEST(ResultTest, HoldsValueOrError) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad(Status::OutOfRange("x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(good.value_or(-1), 42);
}

}  // namespace
}  // namespace spatialjoin
